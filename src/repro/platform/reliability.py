"""Gold-free worker reliability scoring from agreement statistics.

The paper assumes experts are known a priori and cites the
worker-identification literature (Karger et al. [17], Bozzon et al.
[4], ...) as "orthogonal and complementary": "it is possible to apply
the algorithms presented in those works to detect a set of experts and
then use our algorithm to leverage their additional expertise."

This module closes that loop with the standard agreement heuristic: on
tasks judged by several workers, score each worker by how often her
answer matches the (weighted) majority of the others, iterating the
weights to a fixed point — a light-weight cousin of the EM approach of
Karger et al.  Scores can then seed
:func:`repro.workers.expert.make_worker_classes` pools or rank workers
for promotion to the expert class.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from .job import Judgment

__all__ = ["ReliabilityReport", "score_workers", "select_experts"]


@dataclass(frozen=True)
class ReliabilityReport:
    """Per-worker agreement scores.

    Attributes
    ----------
    scores:
        worker id -> agreement score in [0, 1]; higher is more
        reliable.  Workers with no multiply-judged task are absent.
    iterations:
        Fixed-point iterations performed.
    n_tasks_used:
        Tasks with at least two judgments (the usable evidence).
    """

    scores: dict[int, float]
    iterations: int
    n_tasks_used: int

    def ranked(self) -> list[tuple[int, float]]:
        """Workers ordered from most to least reliable."""
        return sorted(self.scores.items(), key=lambda kv: (-kv[1], kv[0]))


def score_workers(
    judgments: list[Judgment],
    max_iterations: int = 20,
    tolerance: float = 1e-6,
) -> ReliabilityReport:
    """Iterative agreement scoring over a judgment log.

    Each round recomputes, for every task, the weighted vote for each
    answer (excluding the worker being scored), and scores the worker
    by the weight fraction agreeing with her.  Weights start uniform
    and are replaced by the scores until convergence.

    Gold judgments are excluded — this estimator exists precisely for
    the no-gold setting.
    """
    by_task: dict[int, list[Judgment]] = defaultdict(list)
    for judgment in judgments:
        if not judgment.is_gold:
            by_task[judgment.task_id].append(judgment)
    usable = {tid: js for tid, js in by_task.items() if len(js) >= 2}
    workers = sorted({j.worker_id for js in usable.values() for j in js})
    if not workers:
        return ReliabilityReport(scores={}, iterations=0, n_tasks_used=0)

    scores = {w: 1.0 for w in workers}
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        agreement_mass: dict[int, float] = {w: 0.0 for w in workers}
        total_mass: dict[int, float] = {w: 0.0 for w in workers}
        for js in usable.values():
            for judgment in js:
                peers = [j for j in js if j.worker_id != judgment.worker_id]
                peer_weight = sum(scores[j.worker_id] for j in peers)
                if peer_weight <= 0:
                    continue
                agreeing = sum(
                    scores[j.worker_id]
                    for j in peers
                    if j.first_wins == judgment.first_wins
                )
                agreement_mass[judgment.worker_id] += agreeing
                total_mass[judgment.worker_id] += peer_weight
        new_scores = {
            w: (agreement_mass[w] / total_mass[w]) if total_mass[w] > 0 else 0.5
            for w in workers
        }
        delta = max(abs(new_scores[w] - scores[w]) for w in workers)
        scores = new_scores
        if delta < tolerance:
            break
    return ReliabilityReport(
        scores=scores, iterations=iterations, n_tasks_used=len(usable)
    )


def select_experts(
    report: ReliabilityReport,
    top_k: int | None = None,
    min_score: float | None = None,
) -> list[int]:
    """Pick the expert candidates from a reliability report.

    Either the ``top_k`` best-scoring workers, the workers at or above
    ``min_score``, or (with both given) the intersection.
    """
    if top_k is None and min_score is None:
        raise ValueError("give top_k, min_score, or both")
    ranked = report.ranked()
    if min_score is not None:
        ranked = [(w, s) for w, s in ranked if s >= min_score]
    if top_k is not None:
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        ranked = ranked[:top_k]
    return [w for w, _ in ranked]
