"""Worker channels: heterogeneous workforce sources.

Section 3.1 notes that CrowdFlower "offers quality-ensured results at
massive scale, good APIs, and multiple channels" — a channel being an
upstream labour source (partner sites, panels) with its own quality,
price, and availability profile.  :class:`Channel` describes one such
source; :func:`build_pool_from_channels` materialises a mixed
:class:`~repro.platform.workforce.WorkerPool` from a channel mix, with
each channel contributing workers of its own model, spam rate and
availability.

Because a pool has a single price and availability, the blended pool
uses the *expectation* of the mix for billing and lets per-worker
models carry the quality differences; the per-worker channel name is
kept for audit via the returned assignment map.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workers.base import WorkerModel
from ..workers.spammer import RandomSpammerModel
from .workforce import WorkerPool

__all__ = ["Channel", "build_pool_from_channels"]


@dataclass(frozen=True)
class Channel:
    """One labour source feeding a worker pool.

    Attributes
    ----------
    name:
        Channel label (e.g. ``"panel-a"``).
    model:
        Error model of the channel's honest workers.
    size:
        Workers contributed to the pool.
    spam_rate:
        Fraction of the channel's workers who are random spammers.
    cost_per_judgment:
        The channel's price per judgment.
    """

    name: str
    model: WorkerModel
    size: int
    spam_rate: float = 0.0
    cost_per_judgment: float = 1.0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("a channel must contribute at least one worker")
        if not 0.0 <= self.spam_rate < 1.0:
            raise ValueError("spam_rate must be in [0, 1)")
        if self.cost_per_judgment < 0:
            raise ValueError("cost per judgment must be non-negative")


def build_pool_from_channels(
    pool_name: str,
    channels: list[Channel],
    rng: np.random.Generator,
    availability: float = 1.0,
) -> tuple[WorkerPool, dict[int, str]]:
    """Blend channels into one pool; return it plus worker->channel map.

    The pool's per-judgment cost is the size-weighted mean of the
    channel prices (the platform bills a blended rate); the exact
    per-channel attribution is recoverable through the returned map.
    """
    if not channels:
        raise ValueError("need at least one channel")
    models: list[WorkerModel] = []
    channel_of: dict[int, str] = {}
    worker_id = 0
    for channel in channels:
        n_spam = int(round(channel.spam_rate * channel.size))
        for k in range(channel.size):
            if k < n_spam:
                models.append(RandomSpammerModel())
            else:
                models.append(channel.model)
            channel_of[worker_id] = channel.name
            worker_id += 1
    # Shuffle so channels interleave in assignment order (worker ids and
    # the channel map are rebuilt to match).
    order = rng.permutation(len(models))
    models = [models[k] for k in order]
    channel_of = {
        new_id: channel_of[int(old_id)] for new_id, old_id in enumerate(order)
    }
    total = sum(channel.size for channel in channels)
    blended_cost = (
        sum(channel.cost_per_judgment * channel.size for channel in channels) / total
    )
    pool = WorkerPool.from_models(
        pool_name,
        models,
        cost_per_judgment=blended_cost,
        availability=availability,
    )
    return pool, channel_of
