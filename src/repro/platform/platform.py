"""The crowdsourcing platform simulator (stands in for CrowdFlower).

Implements the computation model of Section 3: algorithms submit
*batches* of pairwise comparisons (one batch per logical step); the
platform plays out a sequence of *physical steps*, in each of which a
random subset of the pool's workers is active and each active worker
judges one pair.  Quality control follows Section 3.1: a configurable
fraction of judgments are *gold probes* with known ground truth, and a
worker whose gold accuracy drops below the ban threshold is banned and
has all of her judgments discarded (and re-collected from others).

Presentation order is randomised per judgment — each worker sees the
pair in a random left/right order — which neutralises position-biased
spammers (see :class:`repro.workers.spammer.LazyFirstModel`).

Every judgment is paid, including gold probes and judgments later
discarded for spam: detecting a spammer costs real money, exactly as on
the real platform.

Beyond the paper's model, the platform carries a resilience layer (see
``docs/RELIABILITY.md``): a :class:`~repro.platform.faults.FaultPlan`
injects reproducible worker faults (abandonment, stragglers, offline
windows, malformed judgments), a
:class:`~repro.platform.faults.RetryPolicy` governs re-assignment,
deadlines and fallback pools, and ``submit_batch`` *always* settles —
tasks that cannot be completed are flagged ``degraded`` on a per-task
:class:`~repro.platform.job.TaskReport` instead of a stall error
throwing away collected work.  With no faults and no caps the paper
path is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..telemetry import Tracer, resolve_tracer
from ..workers.base import WorkerModel
from .accounting import CostLedger
from .errors import CostCapError, DegradedBatchError
from .faults import FaultPlan, RetryPolicy
from .gold import GoldPolicy
from .job import BatchReport, ComparisonTask, Judgment, TaskReport
from .workforce import SimulatedWorker, WorkerPool

__all__ = ["CrowdPlatform", "FastBatchPlan", "fast_model_groups"]

#: Graceful defaults: unlimited attempts, no deadline, settle degraded.
_DEFAULT_RETRY = RetryPolicy()

#: Uniform variates reserved per judgment on the vectorized fast path:
#: [presentation flip, model draw, model draw, majority-tie coin].
#: Exactly one Philox block (``advance(1)`` = 4 doubles), so judgment
#: ``t``'s block starts at counter ``t`` — the whole RNG discipline.
_FAST_UNIFORM_WIDTH = 4


@dataclass
class _BatchState:
    """Mutable per-batch bookkeeping for one ``submit_batch`` call."""

    tasks: list[ComparisonTask]
    #: Kept judgments per task and the workers who produced them.
    kept: dict[int, list[Judgment]] = field(default_factory=dict)
    judged_by: dict[int, set[int]] = field(default_factory=dict)
    #: Early-settled (degraded) tasks: task id -> reason.
    settled: dict[int, str] = field(default_factory=dict)
    #: Failed assignments (abandoned / malformed) per task.
    failures: dict[int, int] = field(default_factory=dict)
    #: Backoff: task not re-assignable before this physical step.
    not_before: dict[int, int] = field(default_factory=dict)
    #: In-flight straggler judgments: (arrival step, judgment).
    pending: list[tuple[int, Judgment]] = field(default_factory=list)
    #: Worker offline windows: worker id -> first step online again.
    offline_until: dict[int, int] = field(default_factory=dict)
    discarded: int = 0
    malformed: int = 0
    lost_late: int = 0
    retries: int = 0
    faults: int = 0
    banned_ids: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.kept = {t.task_id: [] for t in self.tasks}
        self.judged_by = {t.task_id: set() for t in self.tasks}
        self.failures = {t.task_id: 0 for t in self.tasks}

    def open_tasks(self) -> list[ComparisonTask]:
        """Tasks still collecting: not settled, below their requirement."""
        return [
            t
            for t in self.tasks
            if t.task_id not in self.settled
            and len(self.kept[t.task_id]) < t.required_judgments
        ]

    def deficit(self, task: ComparisonTask) -> int:
        return task.required_judgments - len(self.kept[task.task_id])

    def pending_for(self, task_id: int) -> int:
        return sum(1 for _, j in self.pending if j.task_id == task_id)

    def settle(self, task: ComparisonTask, reason: str) -> None:
        if task.task_id not in self.settled:
            self.settled[task.task_id] = reason


@dataclass
class FastBatchPlan:
    """Array-level state of one prepared fast-path batch.

    ``fast_batch_prepare`` reserves this batch's slice of the
    platform's Philox judgment stream and computes everything that
    depends only on the platform's own counters: which uniforms each
    judgment reads, which worker position it lands on, and the flipped
    pair each worker is shown.  The plan can then be *decided* (the
    only model-dependent part) and *finalized* (majority answers,
    charges, counters) separately — which is what lets the scheduler
    fuse many tenants' plans into one decide call per worker model
    while each tenant keeps its own counter stream.
    """

    n_tasks: int
    required: np.ndarray
    task_of: np.ndarray
    n_judgments: int
    uniforms: np.ndarray
    worker_pos: np.ndarray
    flip: np.ndarray
    shown_vi: np.ndarray
    shown_vj: np.ndarray
    shown_ii: np.ndarray
    shown_jj: np.ndarray


def fast_model_groups(pool: WorkerPool) -> tuple[list[WorkerModel], np.ndarray]:
    """Distinct worker models of ``pool`` and each worker's group index.

    Returns ``(models, group_of_worker)`` where ``group_of_worker[p]``
    is the position in ``models`` of worker ``p``'s model.  Grouping is
    by model *identity*: pools routinely share one model object across
    many workers, and the fused scheduler path relies on tenant views
    of one pool resolving to the same groups.
    """
    workers = pool.workers
    model_index: dict[int, int] = {}
    models: list[WorkerModel] = []
    group_of_worker = np.empty(len(workers), dtype=np.intp)
    for pos, worker in enumerate(workers):
        key = id(worker.model)
        if key not in model_index:
            model_index[key] = len(models)
            models.append(worker.model)
        group_of_worker[pos] = model_index[key]
    return models, group_of_worker


class CrowdPlatform:
    """A simulated crowdsourcing platform with pools, gold, and accounting.

    Parameters
    ----------
    pools:
        Worker pools by name (typically ``{"naive": ..., "expert": ...}``).
    rng:
        Randomness source for availability, assignment, tie breaks —
        and fault injection, so a seeded run reproduces its faults.
    ledger:
        Cost ledger charged per judgment; a private one is created when
        omitted.  Give it a ``hard_cap`` to enforce a budget mid-flight
        (a refused charge raises :class:`CostCapError`).
    gold:
        Optional gold/quality-control policy, applied to every pool.
    faults:
        Optional fault-injection plan.  ``None`` (or an all-zero plan)
        injects nothing and leaves the RNG stream untouched.
    retry:
        Default retry policy for every batch; individual
        ``submit_batch`` calls may override it.  Defaults to graceful
        settling with unlimited attempts and no deadline.
    vectorized:
        Enable the batched fast path: when a batch needs none of the
        resilience machinery (no gold, no active faults, no deadline /
        attempt limit / fallback pool, no hard cap, no bans, full
        availability, every model supports uniform-driven decisions),
        the whole batch is settled from ndarrays — one vectorized
        decide per worker model — instead of the physical-step loop.
        Judgment-level draws then come from a private counter-based
        Philox stream (see ``docs/PERFORMANCE.md``), so fast-path
        results are deterministic and invariant to how a task sequence
        is split into batches, but *not* bit-identical to the step
        loop's draws.  Set ``False`` to force the step loop everywhere.
    tracer:
        Telemetry tracer; one ``platform_batch`` record is emitted per
        logical step (batch submitted), plus ``fault_injected`` /
        ``task_retry`` / ``batch_degraded`` / ``budget_breach`` events
        as the resilience layer acts.  Defaults to the ambient tracer
        (a no-op unless activated).
    """

    def __init__(
        self,
        pools: dict[str, WorkerPool],
        rng: np.random.Generator,
        ledger: CostLedger | None = None,
        gold: GoldPolicy | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        vectorized: bool = True,
    ):
        if not pools:
            raise ValueError("the platform needs at least one worker pool")
        self.pools = dict(pools)
        self.rng = rng
        self.ledger = ledger if ledger is not None else CostLedger()
        self.gold = gold
        self.faults = faults
        self.retry = retry if retry is not None else _DEFAULT_RETRY
        self.tracer = resolve_tracer(tracer)
        self.vectorized = vectorized
        #: Logical steps executed (batches submitted).
        self.logical_steps = 0
        #: Physical steps executed across all batches.
        self.physical_steps_total = 0
        #: Batches settled by the vectorized fast path.
        self.fast_batches_total = 0
        #: All judgments ever kept (for audit/debugging).
        self.judgment_log: list[Judgment] = []
        #: Aggregate resilience counters across all batches.
        self.faults_injected_total = 0
        self.tasks_degraded_total = 0
        self.retries_total = 0
        # Counter-based stream for fast-path judgments: the key is
        # drawn lazily from the platform RNG at first use (one draw),
        # after which judgment ``t`` always reads Philox block ``t`` —
        # independent of batch boundaries.
        self._fast_key: int | None = None
        self._fast_seq = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def compare_batch(
        self,
        pool_name: str,
        indices_i: np.ndarray,
        indices_j: np.ndarray,
        values_i: np.ndarray,
        values_j: np.ndarray,
        judgments_per_task: int = 1,
    ) -> tuple[np.ndarray, BatchReport]:
        """Submit one batch of comparisons; return majority answers.

        Returns the boolean answer array (``True`` = first element of
        the pair wins) plus the execution report.
        """
        tasks = [
            ComparisonTask(
                task_id=k,
                first=int(indices_i[k]),
                second=int(indices_j[k]),
                value_first=float(values_i[k]),
                value_second=float(values_j[k]),
                required_judgments=judgments_per_task,
            )
            for k in range(len(indices_i))
        ]
        report = self.submit_batch(pool_name, tasks)
        return np.asarray(report.answers, dtype=bool), report

    def submit_batch(
        self,
        pool_name: str,
        tasks: list[ComparisonTask],
        retry: RetryPolicy | None = None,
    ) -> BatchReport:
        """Execute one logical step: collect judgments for ``tasks``.

        Always settles: every task either completes with its required
        judgments or is flagged ``degraded`` on its
        :class:`~repro.platform.job.TaskReport` with the judgments that
        *were* kept.  The only exceptions that can escape are typed —
        :class:`CostCapError` when the ledger's hard cap refuses a
        charge (collected work is flushed to the judgment log first)
        and :class:`DegradedBatchError` when the retry policy is strict
        (``on_degraded="raise"``; the fully-settled report rides on the
        exception).
        """
        pool = self._pool(pool_name)
        policy = retry if retry is not None else self.retry
        if not tasks:
            return BatchReport(
                answers=[], physical_steps=0, judgments_collected=0, judgments_discarded=0
            )
        fallback = self._fallback_pool(pool_name, policy)
        max_required = max(task.required_judgments for task in tasks)
        capacity = len(pool.workers) + (len(fallback.workers) if fallback else 0)
        if max_required > capacity:
            raise ValueError(
                f"tasks require {max_required} distinct judgments but pool "
                f"{pool_name!r} has only {len(pool.workers)} workers"
                + (f" (+{len(fallback.workers)} fallback)" if fallback else "")
            )

        self.logical_steps += 1
        plan = self.faults if (self.faults is not None and self.faults.active) else None
        if self._fast_path_ok(pool, policy, fallback, plan, tasks, max_required):
            return self._submit_batch_vectorized(pool, tasks)
        state = _BatchState(tasks=tasks)

        total_needed = sum(task.required_judgments for task in tasks)
        # Generous stall guard: availability, gold probes, bans and
        # faults slow collection down but cannot legitimately exceed
        # this budget; reaching it settles the batch instead of raising.
        max_steps = 200 + 50 * total_needed
        physical_steps = 0
        try:
            while state.open_tasks():
                if (
                    policy.deadline_steps is not None
                    and physical_steps >= policy.deadline_steps
                ):
                    self._settle_remaining(state, "deadline")
                    break
                if physical_steps >= max_steps:
                    self._settle_remaining(state, "stalled")
                    break
                physical_steps += 1
                self.physical_steps_total += 1
                self._deliver_stragglers(state, physical_steps)
                self._settle_unsatisfiable(state, pool, fallback)
                open_tasks = state.open_tasks()
                if not open_tasks:
                    continue
                active = self._sample_active(pool, plan, state, physical_steps)
                if active:
                    self.rng.shuffle(active)  # type: ignore[arg-type]
                    self._run_assignment_pass(
                        pool, active, open_tasks, state, plan, policy, physical_steps
                    )
                if fallback is not None:
                    self._run_fallback_pass(
                        pool, fallback, state, plan, policy, physical_steps
                    )
        except CostCapError:
            # Budget breach mid-batch: preserve all collected work, make
            # the breach observable, and let the typed error propagate.
            self._flush_judgments(state)
            if self.tracer.enabled:
                self.tracer.event(
                    "budget_breach",
                    pool=pool_name,
                    cap=self.ledger.hard_cap,
                    spent=self.ledger.total_cost,
                    physical_steps=physical_steps,
                )
            raise

        report = self._settle_batch(state, pool_name, physical_steps)
        if report.degraded and policy.on_degraded == "raise":
            raise DegradedBatchError(report)
        return report

    # ------------------------------------------------------------------
    # The vectorized fast path
    # ------------------------------------------------------------------
    def _fast_path_ok(
        self,
        pool: WorkerPool,
        policy: RetryPolicy,
        fallback: WorkerPool | None,
        plan: FaultPlan | None,
        tasks: list[ComparisonTask],
        max_required: int,
    ) -> bool:
        """Whether this batch can settle without the physical-step loop.

        The fast path reproduces the step loop's *outcomes* (judgments
        collected, distinct workers per task, costs, majority answers)
        but none of its failure handling, so every feature that can
        alter collection mid-flight forces the step loop.
        """
        if plan is not None or fallback is not None:
            return False
        if any(task.is_gold for task in tasks):
            return False
        return self._fast_path_state_ok(pool, policy, max_required)

    def _fast_path_state_ok(
        self, pool: WorkerPool, policy: RetryPolicy, max_required: int
    ) -> bool:
        """The task-independent half of the fast-path eligibility check."""
        if not self.vectorized:
            return False
        if self.gold is not None:
            return False
        if policy.deadline_steps is not None or policy.max_attempts is not None:
            return False
        if self.ledger.hard_cap is not None:
            return False
        if pool.availability < 1.0:
            return False
        workers = pool.workers
        if max_required > len(workers):
            return False
        if any(worker.banned for worker in workers):
            return False
        seen: set[int] = set()
        for worker in workers:
            key = id(worker.model)
            if key in seen:
                continue
            seen.add(key)
            if not worker.model.supports_uniform_decide():
                return False
        return True

    def fast_path_eligible(self, pool_name: str, judgments_per_task: int) -> bool:
        """Whether a plain comparison batch would take the fast path.

        The array-level twin of ``_fast_path_ok`` for callers (the
        scheduler's fused settlement) that have no ``ComparisonTask``
        objects yet: scheduler requests are never gold, so only the
        platform/pool state matters.  Must stay conservative — a
        ``True`` here promises that ``submit_batch`` on the same
        request would have settled via ``_submit_batch_vectorized``.
        """
        pool = self._pool(pool_name)
        policy = self.retry
        if self.faults is not None and self.faults.active:
            return False
        if self._fallback_pool(pool_name, policy) is not None:
            return False
        return self._fast_path_state_ok(pool, policy, judgments_per_task)

    def _fast_uniforms(self, start: int, count: int) -> np.ndarray:
        """Uniform blocks for judgments ``start .. start + count``.

        One Philox block (4 doubles) per judgment: ``advance(t)`` skips
        exactly ``t`` blocks, so the variates a judgment consumes are a
        function of its global sequence number alone — splitting a task
        stream into different batches cannot change any outcome.
        """
        if self._fast_key is None:
            self._fast_key = int(self.rng.integers(0, 2**63))
        bits = np.random.Philox(key=self._fast_key)
        bits.advance(start)
        return (
            np.random.Generator(bits)
            .random(count * _FAST_UNIFORM_WIDTH)
            .reshape(count, _FAST_UNIFORM_WIDTH)
        )

    def _submit_batch_vectorized(
        self, pool: WorkerPool, tasks: list[ComparisonTask]
    ) -> BatchReport:
        """Settle one fault-free batch from ndarrays, no step loop.

        Workers are assigned round-robin over the global judgment
        sequence: judgment ``q`` goes to worker ``q mod P``.  A task's
        judgments are consecutive, so its workers are distinct whenever
        ``required_judgments <= P`` (checked by ``_fast_path_ok``), and
        the rotation carries across batches like the step loop's
        round-robin fairness.
        """
        required = np.array([t.required_judgments for t in tasks], dtype=np.intp)
        plan = self.fast_batch_prepare(
            pool,
            np.array([t.first for t in tasks], dtype=np.intp),
            np.array([t.second for t in tasks], dtype=np.intp),
            np.array([t.value_first for t in tasks]),
            np.array([t.value_second for t in tasks]),
            required,
            count_logical_step=False,
        )
        raw = self.fast_batch_decide(pool, plan)
        _, report = self.fast_batch_finalize(pool, plan, raw, tasks=tasks)
        return report

    def fast_batch_prepare(
        self,
        pool: WorkerPool,
        index_first: np.ndarray,
        index_second: np.ndarray,
        values_first: np.ndarray,
        values_second: np.ndarray,
        required: np.ndarray,
        count_logical_step: bool = True,
    ) -> FastBatchPlan:
        """Reserve this batch's judgment stream and lay out its arrays.

        Advances ``_fast_seq`` (and, for external callers, the logical
        step counter — ``submit_batch`` counts its own) and computes
        everything that depends only on this platform's counters.  The
        fused scheduler path prepares many tenants' batches up front —
        each against its own Philox key and sequence — before a single
        shared decide pass.
        """
        workers = pool.workers
        n_workers = len(workers)
        n_tasks = len(index_first)
        if count_logical_step:
            self.logical_steps += 1
        n_judgments = int(required.sum())
        task_of = np.repeat(np.arange(n_tasks, dtype=np.intp), required)

        base = self._fast_seq
        self._fast_seq += n_judgments
        uniforms = self._fast_uniforms(base, n_judgments)
        worker_pos = (base + np.arange(n_judgments)) % n_workers

        vf = np.asarray(values_first)[task_of]
        vs = np.asarray(values_second)[task_of]
        i_f = np.asarray(index_first, dtype=np.intp)[task_of]
        i_s = np.asarray(index_second, dtype=np.intp)[task_of]

        # Randomised presentation order per judgment, as in the step
        # loop: the model sees the flipped pair and the answer is
        # flipped back.
        flip = uniforms[:, 0] < 0.5
        return FastBatchPlan(
            n_tasks=n_tasks,
            required=required,
            task_of=task_of,
            n_judgments=n_judgments,
            uniforms=uniforms,
            worker_pos=worker_pos,
            flip=flip,
            shown_vi=np.where(flip, vs, vf),
            shown_vj=np.where(flip, vf, vs),
            shown_ii=np.where(flip, i_s, i_f),
            shown_jj=np.where(flip, i_f, i_s),
        )

    def fast_batch_decide(self, pool: WorkerPool, plan: FastBatchPlan) -> np.ndarray:
        """Raw model answers for one prepared plan.

        One vectorized decide per distinct worker model; each judgment
        consumes its own uniform block regardless of grouping, so the
        grouping order cannot affect outcomes.
        """
        models, group_of_worker = fast_model_groups(pool)
        model_uniforms = plan.uniforms[:, 1:3]
        if len(models) == 1:
            return np.asarray(
                models[0].decide_from_uniforms(
                    plan.shown_vi,
                    plan.shown_vj,
                    model_uniforms,
                    indices_i=plan.shown_ii,
                    indices_j=plan.shown_jj,
                ),
                dtype=bool,
            )
        raw = np.empty(plan.n_judgments, dtype=bool)
        judgment_group = group_of_worker[plan.worker_pos]
        for gid, model in enumerate(models):
            members = np.flatnonzero(judgment_group == gid)
            if not len(members):
                continue
            raw[members] = model.decide_from_uniforms(
                plan.shown_vi[members],
                plan.shown_vj[members],
                model_uniforms[members],
                indices_i=plan.shown_ii[members],
                indices_j=plan.shown_jj[members],
            )
        return raw

    def fast_batch_finalize(
        self,
        pool: WorkerPool,
        plan: FastBatchPlan,
        raw: np.ndarray,
        tasks: list[ComparisonTask] | None = None,
    ) -> tuple[np.ndarray, BatchReport]:
        """Majority answers, charges and counters for a decided plan.

        With ``tasks`` the full per-judgment audit trail (judgment log,
        per-task reports, listed answers) is produced — the serial
        ``submit_batch`` contract.  Without ``tasks`` (the fused
        scheduler path, which never reads them) those allocations are
        skipped and a lightweight report carries the aggregate totals;
        the answers ndarray is the result either way.  The ledger is
        charged *before* any counter moves, so a ``CostCapError`` from
        a capped tenant ledger leaves the same partial state as the
        serial fast path.
        """
        workers = pool.workers
        n_workers = len(workers)
        n_judgments = plan.n_judgments
        first_wins = raw ^ plan.flip

        # Majority answers; ties use the judgment block's spare coin
        # (the task's first judgment), never the platform RNG.
        votes_first = np.bincount(plan.task_of[first_wins], minlength=plan.n_tasks)
        first_row = np.concatenate(([0], np.cumsum(plan.required)[:-1]))
        tie_coin = plan.uniforms[first_row, 3] < 0.5
        answers = np.where(
            2 * votes_first == plan.required, tie_coin, 2 * votes_first > plan.required
        )

        # Bookkeeping parity with the step loop: charges, physical
        # steps, per-worker tallies, and the audit log all match what
        # an all-active round-robin collection would record.
        self.ledger.charge(pool.name, n_judgments, pool.cost_per_judgment)
        physical_steps = -(-n_judgments // n_workers)
        self.physical_steps_total += physical_steps
        self.fast_batches_total += 1
        per_worker = np.bincount(plan.worker_pos, minlength=n_workers)
        for pos, worker in enumerate(workers):
            worker.judgments_made += int(per_worker[pos])

        answers_list: list[bool] = []
        task_reports: list[TaskReport] = []
        if tasks is not None:
            steps = np.arange(n_judgments) // n_workers + 1
            worker_ids = np.array([w.worker_id for w in workers], dtype=np.intp)
            judgment_workers = worker_ids[plan.worker_pos]
            self.judgment_log.extend(
                Judgment(
                    task_id=tasks[plan.task_of[q]].task_id,
                    worker_id=int(judgment_workers[q]),
                    first_wins=bool(first_wins[q]),
                    physical_step=int(steps[q]),
                    is_gold=False,
                )
                for q in range(n_judgments)
            )
            answers_list = [bool(a) for a in answers]
            task_reports = [
                TaskReport(
                    task_id=task.task_id,
                    status="ok",
                    reason="",
                    judgments_kept=task.required_judgments,
                    required_judgments=task.required_judgments,
                    attempts_failed=0,
                )
                for task in tasks
            ]
        if self.tracer.enabled:
            self.tracer.event(
                "platform_batch",
                pool=pool.name,
                tasks=plan.n_tasks,
                physical_steps=physical_steps,
                judgments_collected=n_judgments,
                judgments_discarded=0,
                workers_banned=0,
                faults_injected=0,
                tasks_degraded=0,
                fast_path=True,
            )
        report = BatchReport(
            answers=answers_list,
            physical_steps=physical_steps,
            judgments_collected=n_judgments,
            judgments_discarded=0,
            workers_banned=[],
            task_reports=task_reports,
            faults_injected=0,
            judgments_malformed=0,
            judgments_lost_late=0,
            retries=0,
        )
        return np.asarray(answers, dtype=bool), report

    # ------------------------------------------------------------------
    # Batch execution internals
    # ------------------------------------------------------------------
    def _run_assignment_pass(
        self,
        pool: WorkerPool,
        active: list[SimulatedWorker],
        open_tasks: list[ComparisonTask],
        state: _BatchState,
        plan: FaultPlan | None,
        policy: RetryPolicy,
        physical_steps: int,
    ) -> None:
        """One physical step's worth of assignments for one pool."""
        for worker in active:
            if worker.banned:
                continue
            if self.gold is not None and self.gold.should_inject(self.rng):
                newly_banned = self._run_gold_probe(pool, worker, physical_steps)
                if newly_banned:
                    state.banned_ids.append(worker.worker_id)
                    state.discarded += self._discard_judgments(worker.worker_id, state)
                continue
            task = self._next_task_for(worker, open_tasks, state, physical_steps)
            if task is None:
                continue
            fault = (
                plan.roll_assignment(self.rng)
                if plan is not None and plan.has_assignment_faults
                else None
            )
            if fault is None:
                judgment = self._collect_judgment(pool, worker, task, physical_steps)
                state.kept[task.task_id].append(judgment)
                state.judged_by[task.task_id].add(worker.worker_id)
                continue
            self._apply_assignment_fault(
                fault, pool, worker, task, state, plan, policy, physical_steps
            )

    def _apply_assignment_fault(
        self,
        fault: str,
        pool: WorkerPool,
        worker: SimulatedWorker,
        task: ComparisonTask,
        state: _BatchState,
        plan: FaultPlan,
        policy: RetryPolicy,
        physical_steps: int,
    ) -> None:
        """Play out one rolled fault on one assignment."""
        state.faults += 1
        self.faults_injected_total += 1
        if self.tracer.enabled:
            self.tracer.event(
                "fault_injected",
                pool=pool.name,
                worker=worker.worker_id,
                task=task.task_id,
                fault=fault,
            )
        if fault == "straggle":
            # The judgment is produced (and paid) now but lands late;
            # the worker is committed, so she is never double-assigned.
            judgment = self._collect_judgment(pool, worker, task, physical_steps)
            state.judged_by[task.task_id].add(worker.worker_id)
            state.pending.append((physical_steps + plan.straggle_steps, judgment))
            return
        if fault == "malformed":
            # Paid work, unusable answer: judge (consuming the worker's
            # RNG draws), charge, then discard the judgment.
            self._collect_judgment(pool, worker, task, physical_steps)
            state.judged_by[task.task_id].add(worker.worker_id)
            state.malformed += 1
        # abandon: no judgment, no charge; the worker may retry later.
        self._record_failure(task, state, policy, physical_steps)

    def _record_failure(
        self,
        task: ComparisonTask,
        state: _BatchState,
        policy: RetryPolicy,
        physical_steps: int,
    ) -> None:
        """Count a failed assignment; back off or settle the task."""
        state.failures[task.task_id] += 1
        failures = state.failures[task.task_id]
        if policy.attempts_exhausted(failures):
            state.settle(task, "retries_exhausted")
            return
        state.retries += 1
        self.retries_total += 1
        backoff = policy.backoff_steps(failures)
        if backoff > 0:
            state.not_before[task.task_id] = physical_steps + backoff
        if self.tracer.enabled:
            self.tracer.event(
                "task_retry",
                task=task.task_id,
                failures=failures,
                not_before=state.not_before.get(task.task_id, physical_steps),
            )

    def _run_fallback_pass(
        self,
        pool: WorkerPool,
        fallback: WorkerPool,
        state: _BatchState,
        plan: FaultPlan | None,
        policy: RetryPolicy,
        physical_steps: int,
    ) -> None:
        """Serve primary-starved tasks from the fallback pool."""
        starved = [
            t
            for t in state.open_tasks()
            if self._eligible_count(pool, t, state) + state.pending_for(t.task_id)
            < state.deficit(t)
        ]
        if not starved:
            return
        active = self._sample_active(fallback, plan, state, physical_steps)
        if not active:
            return
        self.rng.shuffle(active)  # type: ignore[arg-type]
        self._run_assignment_pass(
            fallback, active, starved, state, plan, policy, physical_steps
        )

    def _deliver_stragglers(self, state: _BatchState, physical_steps: int) -> None:
        """Land matured straggler judgments; drop ones whose task settled."""
        if not state.pending:
            return
        still_pending: list[tuple[int, Judgment]] = []
        for arrival, judgment in state.pending:
            if arrival > physical_steps:
                still_pending.append((arrival, judgment))
                continue
            task_id = judgment.task_id
            task = next(t for t in state.tasks if t.task_id == task_id)
            if (
                task_id in state.settled
                or len(state.kept[task_id]) >= task.required_judgments
            ):
                state.lost_late += 1
            else:
                state.kept[task_id].append(judgment)
        state.pending = still_pending

    def _settle_unsatisfiable(
        self, state: _BatchState, pool: WorkerPool, fallback: WorkerPool | None
    ) -> None:
        """Settle tasks no remaining workforce can ever complete.

        Mid-batch gold bans can drop the *unbanned* worker count below a
        task's outstanding requirement; the seed platform then spun
        until the stall guard fired, discarding everything.  Detect it
        and settle with the judgments already kept instead.
        """
        for task in state.open_tasks():
            eligible = self._eligible_count(pool, task, state)
            if fallback is not None:
                eligible += self._eligible_count(fallback, task, state)
            if eligible + state.pending_for(task.task_id) < state.deficit(task):
                state.settle(task, "pool_exhausted")

    def _eligible_count(
        self, pool: WorkerPool, task: ComparisonTask, state: _BatchState
    ) -> int:
        """Unbanned workers that could still judge ``task``."""
        judged = state.judged_by[task.task_id]
        return sum(
            1
            for w in pool.workers
            if not w.banned and w.worker_id not in judged
        )

    def _sample_active(
        self,
        pool: WorkerPool,
        plan: FaultPlan | None,
        state: _BatchState,
        physical_steps: int,
    ) -> list[SimulatedWorker]:
        """Sample ``W_t``, excluding workers inside an offline window."""
        if plan is None or plan.offline_rate <= 0.0:
            return pool.sample_active(self.rng)
        online: list[SimulatedWorker] = []
        for worker in pool.active_members:
            if state.offline_until.get(worker.worker_id, 0) > physical_steps:
                continue
            if plan.roll_offline(self.rng):
                state.offline_until[worker.worker_id] = (
                    physical_steps + plan.offline_steps
                )
                state.faults += 1
                self.faults_injected_total += 1
                if self.tracer.enabled:
                    self.tracer.event(
                        "fault_injected",
                        pool=pool.name,
                        worker=worker.worker_id,
                        task=-1,
                        fault="offline",
                    )
                continue
            online.append(worker)
        if pool.availability >= 1.0:
            return online
        mask = self.rng.random(len(online)) < pool.availability
        return [w for w, is_active in zip(online, mask) if is_active]

    def _settle_remaining(self, state: _BatchState, reason: str) -> None:
        """Settle every still-open task as degraded with ``reason``."""
        for task in state.open_tasks():
            state.settle(task, reason)
        if state.pending:
            state.lost_late += len(state.pending)
            state.pending = []

    def _flush_judgments(self, state: _BatchState) -> None:
        """Append every kept judgment to the platform audit log."""
        for task in state.tasks:
            self.judgment_log.extend(state.kept[task.task_id])

    def _settle_batch(
        self, state: _BatchState, pool_name: str, physical_steps: int
    ) -> BatchReport:
        """Answers, per-task reports, telemetry — the batch's epilogue."""
        answers = [
            self._majority_answer(state.kept[task.task_id]) for task in state.tasks
        ]
        collected = sum(len(v) for v in state.kept.values())
        self._flush_judgments(state)
        task_reports = [
            TaskReport(
                task_id=task.task_id,
                status="degraded" if task.task_id in state.settled else "ok",
                reason=state.settled.get(task.task_id, ""),
                judgments_kept=len(state.kept[task.task_id]),
                required_judgments=task.required_judgments,
                attempts_failed=state.failures[task.task_id],
            )
            for task in state.tasks
        ]
        degraded = [t for t in task_reports if t.status == "degraded"]
        self.tasks_degraded_total += len(degraded)
        if self.tracer.enabled:
            self.tracer.event(
                "platform_batch",
                pool=pool_name,
                tasks=len(state.tasks),
                physical_steps=physical_steps,
                judgments_collected=collected,
                judgments_discarded=state.discarded,
                workers_banned=len(state.banned_ids),
                faults_injected=state.faults,
                tasks_degraded=len(degraded),
                fast_path=False,
            )
            if degraded:
                reasons = sorted({t.reason for t in degraded})
                self.tracer.event(
                    "batch_degraded",
                    pool=pool_name,
                    tasks_degraded=len(degraded),
                    reasons=reasons,
                    judgments_kept=sum(t.judgments_kept for t in degraded),
                )
        return BatchReport(
            answers=answers,
            physical_steps=physical_steps,
            judgments_collected=collected,
            judgments_discarded=state.discarded,
            workers_banned=state.banned_ids,
            task_reports=task_reports,
            faults_injected=state.faults,
            judgments_malformed=state.malformed,
            judgments_lost_late=state.lost_late,
            retries=state.retries,
        )

    # ------------------------------------------------------------------
    # Shared internals
    # ------------------------------------------------------------------
    def _pool(self, pool_name: str) -> WorkerPool:
        try:
            return self.pools[pool_name]
        except KeyError:
            raise KeyError(
                f"unknown pool {pool_name!r}; available: {sorted(self.pools)}"
            ) from None

    def _fallback_pool(
        self, pool_name: str, policy: RetryPolicy
    ) -> WorkerPool | None:
        if policy.fallback_pool is None or policy.fallback_pool == pool_name:
            return None
        return self._pool(policy.fallback_pool)

    def _next_task_for(
        self,
        worker: SimulatedWorker,
        open_tasks: list[ComparisonTask],
        state: _BatchState,
        physical_steps: int,
    ) -> ComparisonTask | None:
        """Most judgment-starved assignable task; RNG breaks ties.

        A deterministic first-wins tie break would bias collection
        toward early list positions, so equal-deficit candidates are
        drawn uniformly (no RNG is consumed when there is no tie).
        """
        best: list[ComparisonTask] = []
        best_deficit = 0
        for task in open_tasks:
            if task.task_id in state.settled:
                continue
            if worker.worker_id in state.judged_by[task.task_id]:
                continue
            if state.not_before.get(task.task_id, 0) > physical_steps:
                continue
            deficit = state.deficit(task)
            if deficit > best_deficit:
                best = [task]
                best_deficit = deficit
            elif deficit == best_deficit and deficit > 0:
                best.append(task)
        if not best:
            return None
        if len(best) == 1:
            return best[0]
        return best[int(self.rng.integers(len(best)))]

    def _collect_judgment(
        self,
        pool: WorkerPool,
        worker: SimulatedWorker,
        task: ComparisonTask,
        physical_step: int,
    ) -> Judgment:
        """Ask one worker one task, with randomised presentation order."""
        if not self.ledger.can_afford(pool.cost_per_judgment):
            raise CostCapError(
                label=pool.name,
                attempted=pool.cost_per_judgment,
                cap=float(self.ledger.hard_cap),  # type: ignore[arg-type]
                spent=self.ledger.total_cost,
            )
        flip = bool(self.rng.random() < 0.5)
        if flip:
            raw = worker.judge(
                task.value_second, task.value_first, self.rng, task.second, task.first
            )
            first_wins = not raw
        else:
            first_wins = worker.judge(
                task.value_first, task.value_second, self.rng, task.first, task.second
            )
        self.ledger.charge(pool.name, 1, pool.cost_per_judgment)
        return Judgment(
            task_id=task.task_id,
            worker_id=worker.worker_id,
            first_wins=first_wins,
            physical_step=physical_step,
            is_gold=False,
        )

    def _run_gold_probe(
        self, pool: WorkerPool, worker: SimulatedWorker, physical_step: int
    ) -> bool:
        """Send the worker a gold pair; return True if she got banned."""
        assert self.gold is not None
        if not self.ledger.can_afford(pool.cost_per_judgment):
            raise CostCapError(
                label=f"gold:{pool.name}",
                attempted=pool.cost_per_judgment,
                cap=float(self.ledger.hard_cap),  # type: ignore[arg-type]
                spent=self.ledger.total_cost,
            )
        pair = self.gold.sample_pair(self.rng)
        flip = bool(self.rng.random() < 0.5)
        if flip:
            raw = worker.judge(
                pair.value_second, pair.value_first, self.rng, pair.second, pair.first
            )
            first_wins = not raw
        else:
            first_wins = worker.judge(
                pair.value_first, pair.value_second, self.rng, pair.first, pair.second
            )
        self.ledger.charge(f"gold:{pool.name}", 1, pool.cost_per_judgment)
        correct = first_wins == pair.first_wins
        return self.gold.record_and_check(worker, correct)

    def _discard_judgments(self, worker_id: int, state: _BatchState) -> int:
        """Drop all judgments of a banned worker; return the count.

        The affected tasks fall below their required judgment count and
        will be re-collected from other workers in later physical steps
        (the banned worker stays recorded in ``judged_by`` so she is
        never re-assigned).  In-flight straggler judgments of the
        banned worker are dropped too.
        """
        dropped = 0
        for task_id, judgments in state.kept.items():
            before = len(judgments)
            state.kept[task_id] = [j for j in judgments if j.worker_id != worker_id]
            dropped += before - len(state.kept[task_id])
        if state.pending:
            before = len(state.pending)
            state.pending = [
                (a, j) for a, j in state.pending if j.worker_id != worker_id
            ]
            dropped += before - len(state.pending)
        return dropped

    def _majority_answer(self, judgments: list[Judgment]) -> bool:
        """Majority of kept judgments; ties broken by a fair coin."""
        first_votes = sum(1 for j in judgments if j.first_wins)
        second_votes = len(judgments) - first_votes
        if first_votes == second_votes:
            return bool(self.rng.random() < 0.5)
        return first_votes > second_votes
