"""The crowdsourcing platform simulator (stands in for CrowdFlower).

Implements the computation model of Section 3: algorithms submit
*batches* of pairwise comparisons (one batch per logical step); the
platform plays out a sequence of *physical steps*, in each of which a
random subset of the pool's workers is active and each active worker
judges one pair.  Quality control follows Section 3.1: a configurable
fraction of judgments are *gold probes* with known ground truth, and a
worker whose gold accuracy drops below the ban threshold is banned and
has all of her judgments discarded (and re-collected from others).

Presentation order is randomised per judgment — each worker sees the
pair in a random left/right order — which neutralises position-biased
spammers (see :class:`repro.workers.spammer.LazyFirstModel`).

Every judgment is paid, including gold probes and judgments later
discarded for spam: detecting a spammer costs real money, exactly as on
the real platform.
"""

from __future__ import annotations

import numpy as np

from ..telemetry import Tracer, resolve_tracer
from .accounting import CostLedger
from .gold import GoldPolicy
from .job import BatchReport, ComparisonTask, Judgment
from .workforce import SimulatedWorker, WorkerPool

__all__ = ["CrowdPlatform"]


class CrowdPlatform:
    """A simulated crowdsourcing platform with pools, gold, and accounting.

    Parameters
    ----------
    pools:
        Worker pools by name (typically ``{"naive": ..., "expert": ...}``).
    rng:
        Randomness source for availability, assignment and tie breaks.
    ledger:
        Cost ledger charged per judgment; a private one is created when
        omitted.
    gold:
        Optional gold/quality-control policy, applied to every pool.
    tracer:
        Telemetry tracer; one ``platform_batch`` record is emitted per
        logical step (batch submitted).  Defaults to the ambient tracer
        (a no-op unless activated).
    """

    def __init__(
        self,
        pools: dict[str, WorkerPool],
        rng: np.random.Generator,
        ledger: CostLedger | None = None,
        gold: GoldPolicy | None = None,
        tracer: Tracer | None = None,
    ):
        if not pools:
            raise ValueError("the platform needs at least one worker pool")
        self.pools = dict(pools)
        self.rng = rng
        self.ledger = ledger if ledger is not None else CostLedger()
        self.gold = gold
        self.tracer = resolve_tracer(tracer)
        #: Logical steps executed (batches submitted).
        self.logical_steps = 0
        #: Physical steps executed across all batches.
        self.physical_steps_total = 0
        #: All judgments ever kept (for audit/debugging).
        self.judgment_log: list[Judgment] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def compare_batch(
        self,
        pool_name: str,
        indices_i: np.ndarray,
        indices_j: np.ndarray,
        values_i: np.ndarray,
        values_j: np.ndarray,
        judgments_per_task: int = 1,
    ) -> tuple[np.ndarray, BatchReport]:
        """Submit one batch of comparisons; return majority answers.

        Returns the boolean answer array (``True`` = first element of
        the pair wins) plus the execution report.
        """
        tasks = [
            ComparisonTask(
                task_id=k,
                first=int(indices_i[k]),
                second=int(indices_j[k]),
                value_first=float(values_i[k]),
                value_second=float(values_j[k]),
                required_judgments=judgments_per_task,
            )
            for k in range(len(indices_i))
        ]
        report = self.submit_batch(pool_name, tasks)
        return np.asarray(report.answers, dtype=bool), report

    def submit_batch(self, pool_name: str, tasks: list[ComparisonTask]) -> BatchReport:
        """Execute one logical step: collect all judgments for ``tasks``."""
        pool = self._pool(pool_name)
        if not tasks:
            return BatchReport(
                answers=[], physical_steps=0, judgments_collected=0, judgments_discarded=0
            )
        max_required = max(task.required_judgments for task in tasks)
        if max_required > len(pool.workers):
            raise ValueError(
                f"tasks require {max_required} distinct judgments but pool "
                f"{pool_name!r} has only {len(pool.workers)} workers"
            )

        self.logical_steps += 1
        # Kept judgments per task and the workers who produced them.
        kept: dict[int, list[Judgment]] = {task.task_id: [] for task in tasks}
        judged_by: dict[int, set[int]] = {task.task_id: set() for task in tasks}
        by_task = {task.task_id: task for task in tasks}
        discarded = 0
        banned_ids: list[int] = []

        total_needed = sum(task.required_judgments for task in tasks)
        # Generous stall guard: availability, gold probes and bans slow
        # collection down but cannot legitimately exceed this budget.
        max_steps = 200 + 50 * total_needed
        physical_steps = 0
        while any(
            len(kept[t.task_id]) < t.required_judgments for t in tasks
        ):
            if physical_steps >= max_steps:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"batch stalled after {physical_steps} physical steps; "
                    "check pool sizes, availability and ban settings"
                )
            physical_steps += 1
            self.physical_steps_total += 1
            active = pool.sample_active(self.rng)
            if not active:
                continue
            self.rng.shuffle(active)  # type: ignore[arg-type]
            for worker in active:
                if worker.banned:
                    continue
                if self.gold is not None and self.gold.should_inject(self.rng):
                    newly_banned = self._run_gold_probe(pool, worker, physical_steps)
                    if newly_banned:
                        banned_ids.append(worker.worker_id)
                        discarded += self._discard_judgments(worker.worker_id, kept, judged_by)
                    continue
                task = self._next_task_for(worker, tasks, kept, judged_by)
                if task is None:
                    continue
                judgment = self._collect_judgment(pool, worker, task, physical_steps)
                kept[task.task_id].append(judgment)
                judged_by[task.task_id].add(worker.worker_id)

        answers = [self._majority_answer(kept[task.task_id]) for task in tasks]
        collected = sum(len(v) for v in kept.values())
        for task_judgments in kept.values():
            self.judgment_log.extend(task_judgments)
        # Consistency: every answer corresponds to a task in order.
        assert len(answers) == len(by_task)
        if self.tracer.enabled:
            self.tracer.event(
                "platform_batch",
                pool=pool_name,
                tasks=len(tasks),
                physical_steps=physical_steps,
                judgments_collected=collected,
                judgments_discarded=discarded,
                workers_banned=len(banned_ids),
            )
        return BatchReport(
            answers=answers,
            physical_steps=physical_steps,
            judgments_collected=collected,
            judgments_discarded=discarded,
            workers_banned=banned_ids,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pool(self, pool_name: str) -> WorkerPool:
        try:
            return self.pools[pool_name]
        except KeyError:
            raise KeyError(
                f"unknown pool {pool_name!r}; available: {sorted(self.pools)}"
            ) from None

    def _next_task_for(
        self,
        worker: SimulatedWorker,
        tasks: list[ComparisonTask],
        kept: dict[int, list[Judgment]],
        judged_by: dict[int, set[int]],
    ) -> ComparisonTask | None:
        """Most judgment-starved task this worker has not judged yet."""
        best: ComparisonTask | None = None
        best_deficit = 0
        for task in tasks:
            if worker.worker_id in judged_by[task.task_id]:
                continue
            deficit = task.required_judgments - len(kept[task.task_id])
            if deficit > best_deficit:
                best = task
                best_deficit = deficit
        return best

    def _collect_judgment(
        self,
        pool: WorkerPool,
        worker: SimulatedWorker,
        task: ComparisonTask,
        physical_step: int,
    ) -> Judgment:
        """Ask one worker one task, with randomised presentation order."""
        flip = bool(self.rng.random() < 0.5)
        if flip:
            raw = worker.judge(
                task.value_second, task.value_first, self.rng, task.second, task.first
            )
            first_wins = not raw
        else:
            first_wins = worker.judge(
                task.value_first, task.value_second, self.rng, task.first, task.second
            )
        self.ledger.charge(pool.name, 1, pool.cost_per_judgment)
        return Judgment(
            task_id=task.task_id,
            worker_id=worker.worker_id,
            first_wins=first_wins,
            physical_step=physical_step,
            is_gold=False,
        )

    def _run_gold_probe(
        self, pool: WorkerPool, worker: SimulatedWorker, physical_step: int
    ) -> bool:
        """Send the worker a gold pair; return True if she got banned."""
        assert self.gold is not None
        pair = self.gold.sample_pair(self.rng)
        flip = bool(self.rng.random() < 0.5)
        if flip:
            raw = worker.judge(
                pair.value_second, pair.value_first, self.rng, pair.second, pair.first
            )
            first_wins = not raw
        else:
            first_wins = worker.judge(
                pair.value_first, pair.value_second, self.rng, pair.first, pair.second
            )
        self.ledger.charge(f"gold:{pool.name}", 1, pool.cost_per_judgment)
        correct = first_wins == pair.first_wins
        return self.gold.record_and_check(worker, correct)

    @staticmethod
    def _discard_judgments(
        worker_id: int,
        kept: dict[int, list[Judgment]],
        judged_by: dict[int, set[int]],
    ) -> int:
        """Drop all kept judgments of a banned worker; return the count.

        The affected tasks fall below their required judgment count and
        will be re-collected from other workers in later physical steps
        (the banned worker stays recorded in ``judged_by`` so she is
        never re-assigned).
        """
        dropped = 0
        for task_id, judgments in kept.items():
            before = len(judgments)
            kept[task_id] = [j for j in judgments if j.worker_id != worker_id]
            dropped += before - len(kept[task_id])
        return dropped

    def _majority_answer(self, judgments: list[Judgment]) -> bool:
        """Majority of kept judgments; ties broken by a fair coin."""
        first_votes = sum(1 for j in judgments if j.first_wins)
        second_votes = len(judgments) - first_votes
        if first_votes == second_votes:
            return bool(self.rng.random() < 0.5)
        return first_votes > second_votes
