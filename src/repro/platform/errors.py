"""Typed failure modes of the platform layer.

The seed platform had exactly one failure signal: a generic
``RuntimeError`` raised by the batch stall guard, which threw away
every judgment already collected.  Real crowd platforms lose work
constantly (abandonment, stragglers, bans) and the callers need to
distinguish *how* a run failed — and to keep the partial work — so
every failure the platform can signal is now a typed exception that
carries the evidence collected up to the failure point.

Hierarchy::

    PlatformError
    ├── CostCapError        the ledger refused a charge (hard cap)
    └── DegradedBatchError  a batch settled with degraded tasks and the
                            retry policy is strict (``on_degraded="raise"``)

``BudgetExceededError`` — the job-level wrapper that carries a partial
:class:`~repro.jobs.CrowdJobResult` — lives in :mod:`repro.jobs`,
one layer up, because it speaks in job terms (survivors, answers)
rather than platform terms (batches, charges).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .job import BatchReport

__all__ = ["PlatformError", "CostCapError", "DegradedBatchError"]


class PlatformError(RuntimeError):
    """Base class for typed platform failures."""


class CostCapError(PlatformError):
    """A charge was refused because it would push the ledger past its cap.

    The refused charge is *not* recorded, so ``ledger.total_cost`` never
    exceeds the configured cap — the invariant the chaos suite asserts.

    Attributes
    ----------
    label:
        Ledger label of the refused charge.
    attempted:
        Money the refused charge would have added.
    cap:
        The configured hard cap.
    spent:
        Total money on the ledger at refusal time (``<= cap``).
    """

    def __init__(self, label: str, attempted: float, cap: float, spent: float):
        super().__init__(
            f"charge of {attempted:.2f} to {label!r} refused: ledger at "
            f"{spent:.2f} of hard cap {cap:.2f}"
        )
        self.label = label
        self.attempted = attempted
        self.cap = cap
        self.spent = spent


class DegradedBatchError(PlatformError):
    """A batch settled with degraded tasks under a strict retry policy.

    Raised *after* the batch is fully settled: the attached
    :class:`~repro.platform.job.BatchReport` carries every kept
    judgment, per-task status, and the usual counters, so no collected
    work is lost — callers that can live with partial answers catch
    this and read ``.report``; callers that cannot treat it as fatal.
    """

    def __init__(self, report: "BatchReport"):
        degraded = [t.task_id for t in report.task_reports if t.status == "degraded"]
        super().__init__(
            f"batch settled degraded: {len(degraded)} of "
            f"{len(report.task_reports)} tasks incomplete (ids {degraded})"
        )
        self.report = report
