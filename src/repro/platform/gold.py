"""Gold-question quality control (Section 3.1).

"[...] gold comparisons, which are comparisons for which the
ground-truth value is provided and which are used by CrowdFlower to
evaluate the performance of workers and reduce the effect of spam
(responses of workers whose performance on gold comparisons has
accuracy less than 70% are ignored).  In total, 15% of the queries that
we performed are gold queries."

:class:`GoldPolicy` owns the gold pair bank, the injection rate and the
ban rule; the platform consults it while executing batches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .workforce import SimulatedWorker

__all__ = ["GoldPair", "GoldPolicy"]


@dataclass(frozen=True)
class GoldPair:
    """A gold comparison: two values with a known correct answer."""

    first: int
    second: int
    value_first: float
    value_second: float

    @property
    def first_wins(self) -> bool:
        """Ground truth (ties count the first element as correct)."""
        return self.value_first >= self.value_second


class GoldPolicy:
    """Gold injection and spam-ban policy.

    Parameters
    ----------
    pairs:
        The gold bank (pairs with known ground truth, e.g. from the
        golden DOTS set of Section 5.3).
    gold_fraction:
        Fraction of judgments that are gold probes (paper: 0.15).
    ban_threshold:
        Gold accuracy below which a worker is banned (paper: 0.7).
    min_gold_answers:
        Gold answers required before the ban rule applies; prevents
        banning honest workers on a single unlucky probe.
    """

    def __init__(
        self,
        pairs: list[GoldPair],
        gold_fraction: float = 0.15,
        ban_threshold: float = 0.7,
        min_gold_answers: int = 3,
    ):
        if not pairs:
            raise ValueError("the gold bank must not be empty")
        if not 0.0 <= gold_fraction < 1.0:
            raise ValueError("gold_fraction must be in [0, 1)")
        if not 0.0 < ban_threshold <= 1.0:
            raise ValueError("ban_threshold must be in (0, 1]")
        if min_gold_answers < 1:
            raise ValueError("min_gold_answers must be at least 1")
        self.pairs = list(pairs)
        self.gold_fraction = float(gold_fraction)
        self.ban_threshold = float(ban_threshold)
        self.min_gold_answers = int(min_gold_answers)

    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        rng: np.random.Generator,
        n_pairs: int = 30,
        min_relative_difference: float = 0.0,
        **kwargs: object,
    ) -> "GoldPolicy":
        """Build a gold bank by sampling distinct-value pairs.

        ``values`` are the golden-set values (known ground truth).
        Pairs with equal values are unusable as gold and are skipped.
        ``min_relative_difference`` keeps gold questions *easy* (real
        platforms pick clear-cut gold so honest workers are not banned
        for failing genuinely hard questions).
        """
        values = np.asarray(values, dtype=np.float64)
        if len(values) < 2:
            raise ValueError("need at least two golden values")
        pairs: list[GoldPair] = []
        attempts = 0
        while len(pairs) < n_pairs and attempts < 50 * n_pairs:
            attempts += 1
            i, j = rng.choice(len(values), size=2, replace=False)
            if values[i] == values[j]:
                continue
            denom = max(abs(values[i]), abs(values[j]))
            if denom > 0 and abs(values[i] - values[j]) / denom < min_relative_difference:
                continue
            pairs.append(
                GoldPair(
                    first=int(i),
                    second=int(j),
                    value_first=float(values[i]),
                    value_second=float(values[j]),
                )
            )
        if not pairs:
            raise ValueError("could not sample any gold pair with distinct values")
        return cls(pairs, **kwargs)

    def should_inject(self, rng: np.random.Generator) -> bool:
        """Whether the next judgment should be a gold probe."""
        return bool(rng.random() < self.gold_fraction)

    def sample_pair(self, rng: np.random.Generator) -> GoldPair:
        """Draw a gold pair uniformly from the bank."""
        return self.pairs[int(rng.integers(0, len(self.pairs)))]

    def record_and_check(self, worker: SimulatedWorker, correct: bool) -> bool:
        """Record a gold outcome; return ``True`` if the worker is now banned."""
        worker.record_gold(correct)
        if (
            worker.gold_answered >= self.min_gold_answers
            and worker.gold_accuracy < self.ban_threshold
        ):
            worker.banned = True
            return True
        return False
