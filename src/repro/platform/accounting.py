"""Monetary cost accounting (Section 3.4).

"The main measure of resource consumption that is usually of interest
in crowdsourcing applications is the number of operations performed by
workers, as they correspond directly to monetary costs, given that
workers are paid for each operation they perform."

:class:`CostLedger` accumulates per-label operation counts and money;
it satisfies the :class:`repro.core.oracle.CostChargeable` protocol so
oracles (and the platform) can charge it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import CostCapError

__all__ = ["LedgerEntry", "CostLedger"]


@dataclass
class LedgerEntry:
    """Aggregate charges for one label (worker class)."""

    operations: int = 0
    money: float = 0.0


@dataclass
class CostLedger:
    """Running account of worker operations and their monetary cost.

    Labels are free-form; the library uses ``"naive"``/``"expert"`` for
    comparisons and ``"gold:<label>"`` for quality-control judgments,
    which are paid work even though their answers never reach the
    algorithm.

    ``hard_cap`` turns the ledger into a mid-flight budget enforcer: a
    charge that would push :attr:`total_cost` past the cap is refused
    with a typed :class:`~repro.platform.errors.CostCapError` and is
    *not* recorded, so the ledger can never stand above its cap — the
    invariant :class:`~repro.jobs.CrowdMaxJob` and the chaos suite
    rely on.  The default (``None``) never refuses anything.
    """

    entries: dict[str, LedgerEntry] = field(default_factory=dict)
    hard_cap: float | None = None

    #: Float-sum slack so a cap equal to the exact bill is not refused.
    _CAP_TOLERANCE = 1e-9

    def charge(self, label: str, count: int, unit_cost: float) -> None:
        """Record ``count`` operations at ``unit_cost`` each.

        Raises :class:`CostCapError` (recording nothing) when the
        charge would push the total past :attr:`hard_cap`.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if unit_cost < 0:
            raise ValueError("unit_cost must be non-negative")
        amount = count * unit_cost
        if not self.can_afford(amount):
            raise CostCapError(
                label=label,
                attempted=amount,
                cap=float(self.hard_cap),  # type: ignore[arg-type]
                spent=self.total_cost,
            )
        entry = self.entries.setdefault(label, LedgerEntry())
        entry.operations += count
        entry.money += amount

    def can_afford(self, amount: float) -> bool:
        """Whether a charge of ``amount`` would stay within the cap."""
        if self.hard_cap is None:
            return True
        return self.total_cost + amount <= self.hard_cap + self._CAP_TOLERANCE

    @property
    def remaining_budget(self) -> float | None:
        """Money left under the cap (``None`` when uncapped)."""
        if self.hard_cap is None:
            return None
        return max(0.0, self.hard_cap - self.total_cost)

    def operations(self, label: str | None = None) -> int:
        """Operations for one label, or across all labels."""
        if label is not None:
            entry = self.entries.get(label)
            return entry.operations if entry else 0
        return sum(entry.operations for entry in self.entries.values())

    def money(self, label: str | None = None) -> float:
        """Money spent on one label, or in total: ``C(n)``."""
        if label is not None:
            entry = self.entries.get(label)
            return entry.money if entry else 0.0
        return sum(entry.money for entry in self.entries.values())

    @property
    def total_cost(self) -> float:
        """Total monetary cost across all labels."""
        return self.money()

    def reset(self) -> None:
        """Clear all entries."""
        self.entries.clear()

    def summary(self) -> str:
        """Human-readable multi-line account statement."""
        lines = ["cost ledger:"]
        for label in sorted(self.entries):
            entry = self.entries[label]
            lines.append(
                f"  {label:<16} {entry.operations:>10d} ops  "
                f"{entry.money:>12.2f} money"
            )
        lines.append(
            f"  {'TOTAL':<16} {self.operations():>10d} ops  {self.total_cost:>12.2f} money"
        )
        return "\n".join(lines)
