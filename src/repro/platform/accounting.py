"""Monetary cost accounting (Section 3.4).

"The main measure of resource consumption that is usually of interest
in crowdsourcing applications is the number of operations performed by
workers, as they correspond directly to monetary costs, given that
workers are paid for each operation they perform."

:class:`CostLedger` accumulates per-label operation counts and money;
it satisfies the :class:`repro.core.oracle.CostChargeable` protocol so
oracles (and the platform) can charge it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LedgerEntry", "CostLedger"]


@dataclass
class LedgerEntry:
    """Aggregate charges for one label (worker class)."""

    operations: int = 0
    money: float = 0.0


@dataclass
class CostLedger:
    """Running account of worker operations and their monetary cost.

    Labels are free-form; the library uses ``"naive"``/``"expert"`` for
    comparisons and ``"gold:<label>"`` for quality-control judgments,
    which are paid work even though their answers never reach the
    algorithm.
    """

    entries: dict[str, LedgerEntry] = field(default_factory=dict)

    def charge(self, label: str, count: int, unit_cost: float) -> None:
        """Record ``count`` operations at ``unit_cost`` each."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if unit_cost < 0:
            raise ValueError("unit_cost must be non-negative")
        entry = self.entries.setdefault(label, LedgerEntry())
        entry.operations += count
        entry.money += count * unit_cost

    def operations(self, label: str | None = None) -> int:
        """Operations for one label, or across all labels."""
        if label is not None:
            entry = self.entries.get(label)
            return entry.operations if entry else 0
        return sum(entry.operations for entry in self.entries.values())

    def money(self, label: str | None = None) -> float:
        """Money spent on one label, or in total: ``C(n)``."""
        if label is not None:
            entry = self.entries.get(label)
            return entry.money if entry else 0.0
        return sum(entry.money for entry in self.entries.values())

    @property
    def total_cost(self) -> float:
        """Total monetary cost across all labels."""
        return self.money()

    def reset(self) -> None:
        """Clear all entries."""
        self.entries.clear()

    def summary(self) -> str:
        """Human-readable multi-line account statement."""
        lines = ["cost ledger:"]
        for label in sorted(self.entries):
            entry = self.entries[label]
            lines.append(
                f"  {label:<16} {entry.operations:>10d} ops  "
                f"{entry.money:>12.2f} money"
            )
        lines.append(f"  {'TOTAL':<16} {self.operations():>10d} ops  {self.total_cost:>12.2f} money")
        return "\n".join(lines)
