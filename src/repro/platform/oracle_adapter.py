"""Adapter: run the paper's algorithms on top of the platform simulator.

:class:`PlatformWorkerModel` presents a platform pool as a
:class:`~repro.workers.base.WorkerModel`, so a standard
:class:`~repro.core.oracle.ComparisonOracle` (with its memoization and
counters) can route comparisons through the full platform machinery —
physical steps, gold probes, spam bans, per-judgment billing.  This is
how the CrowdFlower experiments of Section 5.3 are reproduced: the
algorithm code is identical, only the oracle's backing model changes.

``judgments_per_task`` asks the platform for several independent
judgments per comparison and majority-votes them, reproducing the
paper's redundancy ("for each pair to be compared we requested at
least 21 answers" in the calibration; 7 for the simulated experts).
"""

from __future__ import annotations

import numpy as np

from ..workers.base import WorkerModel
from .errors import DegradedBatchError
from .platform import CrowdPlatform

__all__ = ["PlatformWorkerModel"]


class PlatformWorkerModel(WorkerModel):
    """Worker model backed by a :class:`CrowdPlatform` pool.

    Each :meth:`decide` call is one logical step: the whole pair batch
    is submitted to the platform at once, as the Section 3 model
    prescribes.

    With ``strict=True`` a batch that settles with degraded tasks
    raises :class:`~repro.platform.errors.DegradedBatchError` (carrying
    the settled report) instead of silently feeding partial majorities
    to the algorithm — how a :class:`~repro.jobs.CrowdMaxJob` with a
    :class:`~repro.jobs.ResiliencePolicy` notices that its expert pool
    collapsed and falls back.
    """

    def __init__(
        self,
        platform: CrowdPlatform,
        pool_name: str,
        judgments_per_task: int = 1,
        is_expert: bool = False,
        strict: bool = False,
    ):
        if judgments_per_task < 1:
            raise ValueError("judgments_per_task must be at least 1")
        if pool_name not in platform.pools:
            raise KeyError(f"platform has no pool named {pool_name!r}")
        self.platform = platform
        self.pool_name = pool_name
        self.judgments_per_task = int(judgments_per_task)
        self.is_expert = is_expert
        self.strict = strict

    def decide(
        self,
        values_i: np.ndarray,
        values_j: np.ndarray,
        rng: np.random.Generator,
        indices_i: np.ndarray | None = None,
        indices_j: np.ndarray | None = None,
    ) -> np.ndarray:
        if indices_i is None or indices_j is None:
            # The platform needs element identities for its task records;
            # synthesise stable placeholders when the caller has none.
            indices_i = np.arange(len(values_i), dtype=np.intp)
            indices_j = indices_i + len(values_i)
        answers, report = self.platform.compare_batch(
            self.pool_name,
            indices_i,
            indices_j,
            values_i,
            values_j,
            judgments_per_task=self.judgments_per_task,
        )
        if self.strict and report.degraded:
            raise DegradedBatchError(report)
        return answers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlatformWorkerModel(pool={self.pool_name!r}, "
            f"judgments_per_task={self.judgments_per_task})"
        )
