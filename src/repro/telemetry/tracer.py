"""Structured tracing for the two-phase pipeline.

The paper's contribution is an *accounting* argument — Theorem 1 bounds
``C(n) = x_n c_n + x_e c_e`` by counting comparisons per worker class —
so the reproduction needs first-class, machine-readable records of
where comparisons and wall-clock time go.  A :class:`Tracer` emits flat
dict records of two shapes:

* **spans** — ``span_start`` / ``span_end`` pairs bracketing a named
  stretch of work (``phase1``, ``phase2``, ``job.max``, ...), the end
  record carrying the wall-clock ``duration_s``;
* **events** — point-in-time records (``oracle_batch``,
  ``filter_round``, ``ledger_charge``, ``platform_batch``, ...) with
  kind-specific fields.

Every record carries a per-tracer sequence number ``seq`` and the time
``t`` in seconds since the tracer was created, so a trace totally
orders the run without wall-clock timestamps.

The default is :data:`NULL_TRACER`, a no-op whose ``enabled`` flag is
``False``; hot paths guard emission with ``if tracer.enabled`` so an
untraced run pays one attribute check per *batch* (not per comparison).
Attach a real :class:`Tracer` explicitly via the ``tracer=`` parameters
threaded through the stack, or ambiently with :func:`use_tracer` /
:func:`set_active_tracer` (how the CLI's ``--trace`` traces whole
experiment runs without plumbing changes).

See ``docs/OBSERVABILITY.md`` for the record schema and worked examples.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from types import TracebackType
from typing import IO, Any, Iterator, Protocol

from .metrics import MetricsRegistry

__all__ = [
    "TraceSink",
    "JsonlSink",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_active_tracer",
    "set_active_tracer",
    "use_tracer",
    "resolve_tracer",
]


class TraceSink(Protocol):
    """Anywhere trace records can go (a file, a socket, a list)."""

    def write(self, record: dict[str, Any]) -> None:
        """Persist one record."""
        ...

    def close(self) -> None:
        """Flush and release resources."""
        ...


class JsonlSink:
    """Writes one JSON object per line to ``path`` (the JSONL format).

    The file is opened lazily on the first record and truncated, so
    constructing a sink is free and a run that emits nothing leaves no
    file behind.  Records must be JSON-serialisable; the tracer only
    emits str/int/float/bool/None/list fields, so they are.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: IO[str] | None = None
        self.records_written = 0

    def write(self, record: dict[str, Any]) -> None:
        """Append one record as a JSON line (opens the file lazily)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Streaming sink: records must land as they happen, not at
            # close, so an atomic-rename writer cannot apply here.
            self._fh = self.path.open(  # repro-lint: disable=DUR001 -- streaming sink
                "w", encoding="utf-8"
            )
        json.dump(record, self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.records_written += 1

    def close(self) -> None:
        """Close the file, if it was ever opened."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class Tracer:
    """Collects structured span/event records plus aggregate metrics.

    Parameters
    ----------
    sink:
        Optional destination written per record (e.g. a
        :class:`JsonlSink`).  Without a sink, records are buffered on
        ``self.records`` — convenient for tests and small runs.  With a
        sink, buffering is off by default to keep long traces out of
        memory; pass ``buffer=True`` to keep both.
    buffer:
        Force in-memory buffering on or off (default: buffer exactly
        when there is no sink).
    """

    #: Hot paths guard emission on this flag; the no-op subclass flips it.
    enabled = True

    def __init__(self, sink: TraceSink | None = None, buffer: bool | None = None):
        self.sink = sink
        self._buffer = buffer if buffer is not None else (sink is None)
        self.records: list[dict[str, Any]] = []
        self.metrics = MetricsRegistry()
        self._seq = 0
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> None:
        """Emit one point-in-time record of the given ``kind``."""
        record: dict[str, Any] = {
            "kind": kind,
            "seq": self._seq,
            "t": round(time.perf_counter() - self._t0, 9),
            **fields,
        }
        self._seq += 1
        if self._buffer:
            self.records.append(record)
        if self.sink is not None:
            self.sink.write(record)

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        """Bracket the enclosed block in ``span_start``/``span_end``.

        The ``span_end`` record carries ``duration_s`` and an ``ok``
        flag (``False`` when the block raised); the duration also feeds
        the ``<name>.duration`` timer of :attr:`metrics`.
        """
        self.event("span_start", span=name, **fields)
        start = time.perf_counter()
        ok = True
        try:
            yield
        except BaseException:
            ok = False
            raise
        finally:
            duration = time.perf_counter() - start
            self.metrics.timer(f"{name}.duration").observe(duration)
            self.event(
                "span_end",
                span=name,
                duration_s=round(duration, 9),
                ok=ok,
                **fields,
            )

    def count(self, name: str, amount: int = 1) -> None:
        """Bump the aggregate counter ``name`` (no record emitted)."""
        self.metrics.counter(name).add(amount)

    # ------------------------------------------------------------------
    # Lifecycle / export
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the sink, if any (buffered records stay readable)."""
        if self.sink is not None:
            self.sink.close()

    def write_jsonl(self, path: str | Path) -> Path:
        """Dump the buffered records to ``path`` as JSONL (atomically)."""
        # Imported lazily: repro.experiments imports telemetry, so a
        # module-level import here would be circular.
        from ..experiments.artifacts import write_text_atomic

        lines = [
            json.dumps(record, separators=(",", ":")) for record in self.records
        ]
        body = "\n".join(lines) + "\n" if lines else ""
        return write_text_atomic(Path(path), body)

    def records_of_kind(self, kind: str) -> list[dict[str, Any]]:
        """The buffered records whose ``kind`` matches."""
        return [r for r in self.records if r["kind"] == kind]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(records={self._seq}, sink={self.sink!r})"


class NullTracer(Tracer):
    """The zero-overhead default: every operation is a no-op.

    ``enabled`` is ``False`` so instrumented code can skip even the
    cost of assembling record fields.  Calling the emission methods
    anyway is safe and does nothing, so call sites never need a None
    check.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(sink=None, buffer=False)

    def event(self, kind: str, **fields: Any) -> None:  # noqa: D102 - inherited
        pass

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:  # noqa: D102
        yield

    def count(self, name: str, amount: int = 1) -> None:  # noqa: D102
        pass


#: Shared no-op instance; ``tracer or NULL_TRACER`` style defaults.
NULL_TRACER = NullTracer()

# ----------------------------------------------------------------------
# Ambient (active) tracer
# ----------------------------------------------------------------------
_active: Tracer = NULL_TRACER


def get_active_tracer() -> Tracer:
    """The ambient tracer (the no-op singleton unless one was set)."""
    return _active


def set_active_tracer(tracer: Tracer | None) -> None:
    """Install ``tracer`` as the ambient default (``None`` clears it).

    Instrumented call sites fall back to the ambient tracer when no
    explicit ``tracer=`` is passed, so activating one here traces every
    pipeline constructed afterwards — the hook the CLI's ``--trace``
    and the experiment harness use.
    """
    # The one sanctioned ambient: process-local by design and scoped via
    # use_tracer(); parallel workers build their own tracer per shard.
    global _active  # repro-lint: disable=FRK001 -- sanctioned ambient, scoped by use_tracer()
    _active = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped :func:`set_active_tracer`: restores the previous tracer."""
    previous = get_active_tracer()
    set_active_tracer(tracer)
    try:
        yield tracer
    finally:
        set_active_tracer(previous)


def resolve_tracer(tracer: Tracer | None) -> Tracer:
    """An explicit tracer if given, else the ambient one."""
    return tracer if tracer is not None else _active
