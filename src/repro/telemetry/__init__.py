"""Structured observability for the two-phase pipeline.

Dependency-free tracing and metrics: :class:`Tracer` emits span/event
records (JSONL-exportable via :class:`JsonlSink`), a
:class:`MetricsRegistry` keeps counters and timers, and
:data:`NULL_TRACER` is the zero-overhead default every instrumented
call site falls back to.  See ``docs/OBSERVABILITY.md``.
"""

from .metrics import Counter, MetricsRegistry, Timer
from .names import (
    COUNTER_NAMES,
    EVENT_KINDS,
    SPAN_NAMES,
    TIMER_NAMES,
    is_declared_counter,
    is_declared_event,
    is_declared_span,
)
from .tracer import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    TraceSink,
    Tracer,
    get_active_tracer,
    resolve_tracer,
    set_active_tracer,
    use_tracer,
)

__all__ = [
    "COUNTER_NAMES",
    "Counter",
    "EVENT_KINDS",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SPAN_NAMES",
    "TIMER_NAMES",
    "Timer",
    "TraceSink",
    "Tracer",
    "get_active_tracer",
    "is_declared_counter",
    "is_declared_event",
    "is_declared_span",
    "resolve_tracer",
    "set_active_tracer",
    "use_tracer",
]
