"""Structured observability for the two-phase pipeline.

Dependency-free tracing and metrics: :class:`Tracer` emits span/event
records (JSONL-exportable via :class:`JsonlSink`), a
:class:`MetricsRegistry` keeps counters and timers, and
:data:`NULL_TRACER` is the zero-overhead default every instrumented
call site falls back to.  See ``docs/OBSERVABILITY.md``.
"""

from .metrics import Counter, MetricsRegistry, Timer
from .tracer import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    TraceSink,
    Tracer,
    get_active_tracer,
    resolve_tracer,
    set_active_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Timer",
    "TraceSink",
    "Tracer",
    "get_active_tracer",
    "resolve_tracer",
    "set_active_tracer",
    "use_tracer",
]
