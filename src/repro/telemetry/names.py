"""The declared registry of telemetry names.

Every event kind, span name, and counter the library emits is declared
here, in one place, for two reasons:

* **Contract** — downstream consumers (the trace replayer in
  :mod:`repro.parallel`, dashboards, tests asserting on traces) match
  on these strings; an undeclared name is a silent schema fork.
* **Statically checkable** — the ``TEL002`` rule of ``repro-lint``
  (see ``docs/STATIC_ANALYSIS.md``) verifies that every *literal* name
  passed to ``tracer.event(...)`` / ``tracer.span(...)`` /
  ``tracer.count(...)`` in ``src/`` appears in this registry, so adding
  an instrumentation point forces the declaration to stay current.

Names are dotted-lowercase (counters/spans) or snake_case (event
kinds).  Timer names are derived, not declared: every span ``name``
feeds a ``<name>.duration`` timer (see :meth:`repro.telemetry.Tracer.span`).
"""

from __future__ import annotations

__all__ = [
    "EVENT_KINDS",
    "SPAN_NAMES",
    "COUNTER_NAMES",
    "TIMER_NAMES",
    "is_declared_event",
    "is_declared_span",
    "is_declared_counter",
]

#: Point-in-time record kinds emitted via ``tracer.event(kind, ...)``.
#: ``span_start`` / ``span_end`` are emitted by the tracer itself.
EVENT_KINDS: frozenset[str] = frozenset(
    {
        "span_start",
        "span_end",
        # pipeline / oracle
        "oracle_batch",
        "filter_round",
        "maxfind_result",
        "randomized_round",
        "two_maxfind_round",
        # platform / reliability
        "platform_batch",
        "ledger_charge",
        "fault_injected",
        "task_retry",
        "batch_degraded",
        "budget_breach",
        # parallel engine
        "run_completed",
        "run_failed",
        # multi-job scheduler
        "scheduler_tick",
        "job_admitted",
        "batch_coalesced",
        "batch_fused",
        "cache_hit",
        "job_settled",
        # durability (persistent cache + job journal)
        "journal_append",
        "checkpoint_written",
        "resume_replayed",
        "cache_persisted",
        "cache_invalidated",
        # HTTP serving layer
        "http_request",
        "job_queued",
        "job_cancelled",
        # CLI
        "cli_start",
    }
)

#: Named stretches of work bracketed via ``with tracer.span(name, ...)``.
SPAN_NAMES: frozenset[str] = frozenset(
    {
        "cli",
        "maxfind",
        "phase1",
        "phase2",
        "filter",
        "two_maxfind",
        "randomized_maxfind",
        "job.max",
        "job.topk",
        "parallel_run",
        "scheduler.run",
        "scheduler.tick.settle",
        "scheduler.tick.scatter",
        "scheduler.tick.resume",
        "service.generation",
    }
)

#: Aggregate counters bumped via ``tracer.count(name)``.
COUNTER_NAMES: frozenset[str] = frozenset(
    {
        "parallel.runs_completed",
        "parallel.runs_failed",
        "durability.journal_appends",
        "durability.resume_replays",
        "durability.cache_persisted",
        "service.jobs_submitted",
        "service.jobs_settled",
        "service.http_requests",
    }
)

#: Derived timer names: one ``<span>.duration`` timer per declared span.
TIMER_NAMES: frozenset[str] = frozenset(f"{name}.duration" for name in SPAN_NAMES)


def is_declared_event(kind: str) -> bool:
    """Whether ``kind`` is a declared event kind."""
    return kind in EVENT_KINDS


def is_declared_span(name: str) -> bool:
    """Whether ``name`` is a declared span name."""
    return name in SPAN_NAMES


def is_declared_counter(name: str) -> bool:
    """Whether ``name`` is a declared counter (or derived timer) name."""
    return name in COUNTER_NAMES or name in TIMER_NAMES
