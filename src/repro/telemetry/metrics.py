"""Counters and timers: the aggregate half of the telemetry layer.

Where :mod:`repro.telemetry.tracer` records *individual* happenings
(span boundaries, oracle batches, filter rounds), the
:class:`MetricsRegistry` keeps *aggregates*: monotonically increasing
counters and accumulating timers.  A registry is cheap enough to carry
everywhere — a counter bump is one dict lookup plus an integer add —
and renders to a plain dict for assertions, CSV rows or JSONL export.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Counter", "Timer", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically increasing count (comparisons, batches, rounds)."""

    name: str
    value: int = 0

    def add(self, amount: int) -> None:
        """Increase the counter by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only move forward")
        self.value += amount

    def inc(self) -> None:
        """Increase the counter by one."""
        self.value += 1


@dataclass
class Timer:
    """Accumulated wall-clock time across any number of observations."""

    name: str
    total_seconds: float = 0.0
    count: int = 0

    def observe(self, seconds: float) -> None:
        """Record one observation of ``seconds``."""
        if seconds < 0:
            raise ValueError("durations must be non-negative")
        self.total_seconds += seconds
        self.count += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager measuring the enclosed block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def mean_seconds(self) -> float:
        """Average duration per observation (0.0 before any)."""
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class MetricsRegistry:
    """Named counters and timers, created lazily on first use.

    The registry is deliberately permissive about names — any string —
    but the library sticks to dotted paths such as
    ``oracle.fresh_comparisons`` or ``phase1.duration`` so exports sort
    into sensible groups.
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    timers: dict[str, Timer] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created at zero if new."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        """The timer called ``name``, created empty if new."""
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = Timer(name)
        return timer

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view: counter values and timer totals by name."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "timers": {
                name: {
                    "total_seconds": t.total_seconds,
                    "count": t.count,
                }
                for name, t in sorted(self.timers.items())
            },
        }
