"""The stable public surface of ``repro``.

This module is the **canonical import point** for everything the
library supports long-term.  Import from here::

    from repro.api import CrowdMaxJob, CrowdScheduler, JobPhaseConfig

and your code only depends on names this module guarantees: additions
are backwards-compatible, removals go through a ``DeprecationWarning``
cycle first, and the internal module layout (``repro.jobs``,
``repro.scheduler.engine``, ...) is free to change underneath without
breaking you.  The ``API001`` rule of ``repro-lint`` (see
``docs/STATIC_ANALYSIS.md``) enforces the discipline mechanically:
example code must import from here, and nothing may import a
deprecated name outside its shim.

The surface, by layer:

* **Algorithms** (:mod:`repro.core`) — the paper's machinery:
  instances, the memoizing comparison oracle, the filtering phase, the
  2-MaxFind and randomized phase-2 algorithms, the end-to-end
  :func:`find_max`, and the ``u_n`` / error-probability estimators.
* **Worker models** (:mod:`repro.workers`) — threshold/Thurstone/
  majority-of-k/adversarial/spammer judges, the calibrated real-data
  model, and :func:`make_worker_classes`.
* **Datasets** (:mod:`repro.datasets`) — the paper's real-data
  instances (dot images, car prices, search relevance).
* **Platform** (:mod:`repro.platform`) — the CrowdFlower stand-in:
  pools, gold quality control, fault injection, retries, the cost
  ledger, and the typed platform error hierarchy.
* **Jobs** (:mod:`repro.jobs`) — declarative MAX / TOP-k queries
  with budget caps and the uniform ``submit()/settle()`` protocol;
  graceful degradation via :class:`ResiliencePolicy`.
* **Scheduler** (:mod:`repro.scheduler`) — deterministic multi-job
  execution over shared pools with fair-share admission, per-tenant
  budgets, and the cross-job comparison memo cache.
* **Service** (:mod:`repro.service_http`) — the HTTP serving layer:
  the versioned ``repro.service/v1`` wire shapes (:class:`JobSpec`,
  :class:`JobView`, ...), the single error-envelope registry
  (:data:`WIRE_ERRORS` / :func:`wire_code` / :func:`error_envelope`)
  that gives every typed error a stable wire code, the
  :class:`ServiceServer` / :class:`ServiceClient` pair, and the
  tenancy primitives (:class:`TenantAuth`, :class:`TokenBucket`).
* **Durability** (:mod:`repro.durability`) — opt-in persistent state:
  the SQLite-backed comparison store behind
  :class:`DurableComparisonCache` and the append-only job journal that
  lets a killed scheduler run resume bit-identically
  (``DurabilityPolicy(store_path=...)``).
* **Telemetry** (:mod:`repro.telemetry`) — structured tracing with
  declared record names.
* **Experiment drivers** (:mod:`repro.experiments`,
  :mod:`repro.parallel`) — seeded sweeps, the parallel run engine,
  and atomic result persistence.

``ResilientCrowdMaxJob`` completed its deprecation cycle and is gone:
pass ``resilience=ResiliencePolicy(...)`` to :class:`CrowdMaxJob`
instead.
"""

from __future__ import annotations

from .core import (
    CascadeMaxFinder,
    ComparisonOracle,
    ExpertAwareMaxFinder,
    FilterResult,
    MaxFindResult,
    ProblemInstance,
    adversarial_instance,
    estimate_perr,
    estimate_u_n,
    filter_candidates,
    find_max,
    planted_instance,
    randomized_maxfind,
    tiered_instance,
    two_maxfind,
    uniform_instance,
)
from .datasets import (
    SEARCH_QUERIES,
    cars_instance,
    dots_instance,
    search_instance,
)
from .durability import (
    DurabilityError,
    DurabilityPolicy,
    JobJournal,
    JournalMismatchError,
    PersistentComparisonStore,
    StoreRebuiltWarning,
)
from .experiments import (
    EstimationConfig,
    EstimationData,
    SweepConfig,
    SweepData,
    load_result,
    run_bench_comparison,
    run_estimation_sweep,
    run_fault_sweep,
    save_result,
)
from .parallel import (
    RunError,
    RunResult,
    RunSpec,
    execute_runs,
    spawn_run_seeds,
)
from .platform import (
    CostCapError,
    CostLedger,
    CrowdPlatform,
    DegradedBatchError,
    FaultPlan,
    GoldPair,
    GoldPolicy,
    PlatformError,
    PlatformWorkerModel,
    RetryPolicy,
    WorkerPool,
)
from .jobs import (
    WIRE_SCHEMA,
    BudgetExceededError,
    CrowdJobResult,
    CrowdMaxJob,
    CrowdTopKJob,
    JobPhaseConfig,
    ResiliencePolicy,
)
from .scheduler import (
    ComparisonMemoCache,
    CrowdScheduler,
    DurableComparisonCache,
    JobCancelledError,
    JobOutcome,
    JobTicket,
    SchedulerSaturatedError,
    fingerprint_instance,
)
from .service_http import (
    JOB_STATES,
    SETTLED_STATES,
    WIRE_ERRORS,
    WIRE_STATUS,
    ConflictError,
    EventRecord,
    ForbiddenError,
    HealthView,
    InvalidRequestError,
    JobFailedError,
    JobSpec,
    JobView,
    MethodNotAllowedError,
    NotFoundError,
    RateLimitedError,
    RemoteServiceError,
    ResultEnvelope,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceResponse,
    ServiceServer,
    TenantAuth,
    TokenBucket,
    UnauthorizedError,
    default_pool_factory,
    error_envelope,
    wire_code,
    wire_status,
)
from .telemetry import (
    JsonlSink,
    MetricsRegistry,
    Tracer,
    resolve_tracer,
    set_active_tracer,
    use_tracer,
)
from .workers import (
    AdversarialWorkerModel,
    BiasedErrorBehavior,
    CalibratedCarsWorkerModel,
    MajorityOfKModel,
    RandomSpammerModel,
    ThresholdWorkerModel,
    ThurstoneWorkerModel,
    WorkerClass,
    make_worker_classes,
    majority_vote,
)

__all__ = [
    # algorithms
    "CascadeMaxFinder",
    "ComparisonOracle",
    "ExpertAwareMaxFinder",
    "FilterResult",
    "MaxFindResult",
    "ProblemInstance",
    "adversarial_instance",
    "estimate_perr",
    "estimate_u_n",
    "filter_candidates",
    "find_max",
    "planted_instance",
    "randomized_maxfind",
    "tiered_instance",
    "two_maxfind",
    "uniform_instance",
    # worker models
    "AdversarialWorkerModel",
    "BiasedErrorBehavior",
    "CalibratedCarsWorkerModel",
    "MajorityOfKModel",
    "RandomSpammerModel",
    "ThresholdWorkerModel",
    "ThurstoneWorkerModel",
    "WorkerClass",
    "make_worker_classes",
    "majority_vote",
    # datasets
    "SEARCH_QUERIES",
    "cars_instance",
    "dots_instance",
    "search_instance",
    # platform
    "CostCapError",
    "CostLedger",
    "CrowdPlatform",
    "DegradedBatchError",
    "FaultPlan",
    "GoldPair",
    "GoldPolicy",
    "PlatformError",
    "PlatformWorkerModel",
    "RetryPolicy",
    "WorkerPool",
    # jobs
    "BudgetExceededError",
    "CrowdJobResult",
    "CrowdMaxJob",
    "CrowdTopKJob",
    "JobPhaseConfig",
    "ResiliencePolicy",
    # scheduler
    "ComparisonMemoCache",
    "CrowdScheduler",
    "DurableComparisonCache",
    "JobCancelledError",
    "JobOutcome",
    "JobTicket",
    "SchedulerSaturatedError",
    "fingerprint_instance",
    # service (HTTP wire API)
    "WIRE_SCHEMA",
    "JOB_STATES",
    "SETTLED_STATES",
    "WIRE_ERRORS",
    "WIRE_STATUS",
    "ServiceError",
    "InvalidRequestError",
    "UnauthorizedError",
    "ForbiddenError",
    "NotFoundError",
    "MethodNotAllowedError",
    "ConflictError",
    "RateLimitedError",
    "JobFailedError",
    "RemoteServiceError",
    "wire_code",
    "wire_status",
    "error_envelope",
    "JobSpec",
    "JobView",
    "ResultEnvelope",
    "EventRecord",
    "HealthView",
    "TokenBucket",
    "TenantAuth",
    "ServiceConfig",
    "ServiceServer",
    "ServiceClient",
    "ServiceResponse",
    "default_pool_factory",
    # durability
    "DurabilityError",
    "DurabilityPolicy",
    "JobJournal",
    "JournalMismatchError",
    "PersistentComparisonStore",
    "StoreRebuiltWarning",
    # telemetry
    "JsonlSink",
    "MetricsRegistry",
    "Tracer",
    "resolve_tracer",
    "set_active_tracer",
    "use_tracer",
    # experiment drivers
    "EstimationConfig",
    "EstimationData",
    "RunError",
    "RunResult",
    "RunSpec",
    "SweepConfig",
    "SweepData",
    "execute_runs",
    "load_result",
    "run_bench_comparison",
    "run_estimation_sweep",
    "run_fault_sweep",
    "save_result",
    "spawn_run_seeds",
]
