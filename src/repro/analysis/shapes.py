"""Shape assertions for reproduced curves.

The reproduction contract is about *shapes*, not absolute numbers: who
wins, what grows, what plateaus, where curves cross.  These helpers
turn those statements into checkable predicates, used by the benchmark
harness and the tests (and handy when eyeballing new experiments).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "is_monotone",
    "plateaus_at",
    "dominates",
    "crossover_x",
    "growth_ratio",
]


def is_monotone(
    series: Sequence[float], increasing: bool = True, tolerance: float = 0.0
) -> bool:
    """Whether a series is (weakly) monotone, up to ``tolerance`` dips."""
    arr = np.asarray(series, dtype=np.float64)
    if len(arr) < 2:
        return True
    steps = np.diff(arr)
    if increasing:
        return bool(np.all(steps >= -tolerance))
    return bool(np.all(steps <= tolerance))


def plateaus_at(
    series: Sequence[float],
    level: float,
    tolerance: float = 0.05,
    tail_fraction: float = 0.5,
) -> bool:
    """Whether the tail of a series settles within ``tolerance`` of ``level``.

    ``tail_fraction`` selects how much of the series counts as "the
    tail" (Figure 2(b)'s plateaus are judged on the second half).
    """
    arr = np.asarray(series, dtype=np.float64)
    if len(arr) == 0:
        raise ValueError("empty series")
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must be in (0, 1]")
    tail = arr[int(len(arr) * (1.0 - tail_fraction)) :]
    return bool(np.all(np.abs(tail - level) <= tolerance))


def dominates(
    upper: Sequence[float], lower: Sequence[float], slack: float = 0.0
) -> bool:
    """Whether ``upper`` sits at or above ``lower`` pointwise (minus slack)."""
    a = np.asarray(upper, dtype=np.float64)
    b = np.asarray(lower, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("series must have equal length")
    return bool(np.all(a >= b - slack))


def crossover_x(
    xs: Sequence[float], series_a: Sequence[float], series_b: Sequence[float]
) -> float | None:
    """First x at which ``series_a`` stops being below ``series_b``.

    Returns the interpolated crossing point, the first x when ``a``
    starts at or above ``b``, or ``None`` when ``a`` stays below
    throughout.  Used for statements like "Alg 1 undercuts the
    expert-only baseline once c_e/c_n exceeds ~10".
    """
    x = np.asarray(xs, dtype=np.float64)
    a = np.asarray(series_a, dtype=np.float64)
    b = np.asarray(series_b, dtype=np.float64)
    if not (len(x) == len(a) == len(b)) or len(x) == 0:
        raise ValueError("xs, series_a, series_b must be equal-length, non-empty")
    diff = a - b
    if diff[0] >= 0:
        return float(x[0])
    below = diff < 0
    for k in range(1, len(x)):
        if not below[k]:
            # linear interpolation between k-1 and k
            d0, d1 = diff[k - 1], diff[k]
            if d1 == d0:
                return float(x[k])
            t = -d0 / (d1 - d0)
            return float(x[k - 1] + t * (x[k] - x[k - 1]))
    return None


def growth_ratio(series: Sequence[float]) -> float:
    """Last-over-first ratio of a positive series (growth factor)."""
    arr = np.asarray(series, dtype=np.float64)
    if len(arr) == 0:
        raise ValueError("empty series")
    if arr[0] <= 0:
        raise ValueError("growth ratio needs a positive first element")
    return float(arr[-1] / arr[0])
