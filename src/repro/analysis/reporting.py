"""Plain-text rendering of experiment results.

The reproduction has no plotting dependency; every figure is emitted as
an aligned data table (x column plus one column per series) — "the same
rows/series the paper reports" — and every table as aligned rows.  CSV
export is provided for downstream plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

__all__ = ["format_series_table", "format_rows", "write_csv"]


def _fmt(value: object, width: int = 0) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width) if width else text


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render aligned columns: x plus one column per named series."""
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} x values"
            )
    headers = [x_label, *series.keys()]
    columns: list[list[str]] = [[_fmt(x) for x in x_values]]
    columns += [[_fmt(y) for y in ys] for ys in series.values()]
    widths = [
        max(len(header), *(len(cell) for cell in col)) if col else len(header)
        for header, col in zip(headers, columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row_idx in range(len(x_values)):
        lines.append(
            "  ".join(col[row_idx].rjust(w) for col, w in zip(columns, widths))
        )
    return "\n".join(lines)


def format_rows(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned table with a header row."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(r[k]) for r in str_rows)) if str_rows else len(str(header))
        for k, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write rows to CSV atomically (parent directories are created)."""
    # Imported lazily: experiments.base imports this module, so a
    # module-level import of repro.experiments would be circular.
    from ..experiments.artifacts import write_atomic

    def _fill(tmp: Path) -> None:
        with tmp.open("w", newline="") as handle:  # repro-lint: disable=DUR001 -- atomic tmp body
            writer = csv.writer(handle)
            writer.writerow(headers)
            writer.writerows(rows)

    return write_atomic(path, _fill)
