"""Statistical helpers for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["MeanCI", "mean_ci", "proportion_ci", "geometric_mean"]


@dataclass(frozen=True)
class MeanCI:
    """A point estimate with a symmetric confidence interval."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"


def mean_ci(samples: np.ndarray, confidence: float = 0.95) -> MeanCI:
    """Sample mean with a Student-t confidence interval.

    Degenerate inputs are handled explicitly: a single sample has an
    undefined interval (half-width 0 is reported, with ``n = 1`` as the
    caller's warning flag).
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = samples.size
    mean = float(samples.mean())
    if n == 1:
        return MeanCI(mean=mean, half_width=0.0, n=1)
    sem = float(samples.std(ddof=1) / math.sqrt(n))
    t = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return MeanCI(mean=mean, half_width=t * sem, n=n)


def proportion_ci(successes: int, trials: int, confidence: float = 0.95) -> MeanCI:
    """Wilson score interval for a binomial proportion.

    Used for survival-rate statistics such as "the set returned in the
    first round contains the real max in 99% of the times" (§5.2).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    z = float(scipy_stats.norm.ppf(0.5 + confidence / 2.0))
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    )
    return MeanCI(mean=center, half_width=half, n=trials)


def geometric_mean(samples: np.ndarray) -> float:
    """Geometric mean of positive samples (for cost-ratio summaries)."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("need at least one sample")
    if np.any(samples <= 0):
        raise ValueError("geometric mean requires positive samples")
    return float(np.exp(np.log(samples).mean()))
