"""Statistics and reporting helpers for the experiment harness."""

from .reporting import format_rows, format_series_table, write_csv
from .shapes import crossover_x, dominates, growth_ratio, is_monotone, plateaus_at
from .stats import MeanCI, geometric_mean, mean_ci, proportion_ci

__all__ = [
    "MeanCI",
    "crossover_x",
    "dominates",
    "format_rows",
    "format_series_table",
    "geometric_mean",
    "growth_ratio",
    "is_monotone",
    "mean_ci",
    "plateaus_at",
    "proportion_ci",
    "write_csv",
]
