"""High-level job API: crowd queries the CrowdDB way.

Section 1: "Our algorithm can be used inside systems like CrowdDB [14]
to answer a wider range of queries using the crowd."  This module is
that integration surface — a declarative job object per query type
(MAX, TOP-k) that a host system can configure, submit against a
:class:`~repro.platform.platform.CrowdPlatform`, and settle, with
budget caps enforced before any money is spent.

A job binds together:

* the instance (what is being asked about),
* the platform pools to use for each phase (and their redundancy),
* the algorithm parameters (``u_n``, phase-2 choice, ``k``), and
* a hard budget cap, checked against the worst-case cost *up front*
  (Theorem 1's envelopes) so a job that could overrun is rejected
  before submission, not after the bill arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from .core.bounds import (
    all_play_all_comparisons,
    filter_comparisons_upper_bound,
    survivor_upper_bound,
    two_maxfind_comparisons_upper_bound,
)
from .core.filter_phase import filter_candidates
from .core.instance import ProblemInstance
from .core.oracle import ComparisonOracle
from .core.tournament import play_all_play_all
from .core.two_maxfind import two_maxfind
from .platform.oracle_adapter import PlatformWorkerModel
from .platform.platform import CrowdPlatform
from .telemetry import Tracer, resolve_tracer

__all__ = ["JobPhaseConfig", "CrowdJobResult", "CrowdMaxJob", "CrowdTopKJob"]


@dataclass(frozen=True)
class JobPhaseConfig:
    """How one phase talks to the platform."""

    pool: str
    judgments_per_comparison: int = 1

    def __post_init__(self) -> None:
        if self.judgments_per_comparison < 1:
            raise ValueError("judgments_per_comparison must be at least 1")


@dataclass
class CrowdJobResult:
    """Outcome of a settled crowd job."""

    answer: list[int]
    survivors: np.ndarray
    total_cost: float
    naive_comparisons: int
    expert_comparisons: int
    logical_steps: int
    physical_steps: int

    @property
    def winner(self) -> int:
        return self.answer[0]


class CrowdMaxJob:
    """A MAX query executed through a crowdsourcing platform.

    Parameters
    ----------
    instance:
        The items the query ranges over.
    u_n:
        The confusion parameter for the filtering phase.
    phase1, phase2:
        Pool bindings (phase 1 = cheap filtering pool, phase 2 = expert
        pool; phase 2 may point at the same pool with higher redundancy
        to emulate simulated experts).
    budget_cap:
        Hard monetary cap.  The job refuses to start if the worst-case
        cost under Theorem 1's envelopes exceeds the cap.
    """

    kind: Literal["max"] = "max"

    def __init__(
        self,
        instance: ProblemInstance | np.ndarray,
        u_n: int,
        phase1: JobPhaseConfig,
        phase2: JobPhaseConfig,
        budget_cap: float | None = None,
    ):
        if u_n < 1:
            raise ValueError("u_n must be at least 1")
        self.instance = instance
        self.u_n = int(u_n)
        self.phase1 = phase1
        self.phase2 = phase2
        self.budget_cap = budget_cap

    # ------------------------------------------------------------------
    def worst_case_cost(self, platform: CrowdPlatform) -> float:
        """Theorem-1 worst-case bill against the platform's price list."""
        n = len(
            self.instance.values
            if isinstance(self.instance, ProblemInstance)
            else self.instance
        )
        pool1 = platform.pools[self.phase1.pool]
        pool2 = platform.pools[self.phase2.pool]
        naive_wc = (
            filter_comparisons_upper_bound(n, self.u_n)
            * self.phase1.judgments_per_comparison
            * pool1.cost_per_judgment
        )
        expert_wc = (
            two_maxfind_comparisons_upper_bound(survivor_upper_bound(self.u_n))
            * self.phase2.judgments_per_comparison
            * pool2.cost_per_judgment
        )
        return naive_wc + expert_wc

    def _check_budget(self, platform: CrowdPlatform) -> None:
        if self.budget_cap is None:
            return
        worst = self.worst_case_cost(platform)
        if worst > self.budget_cap:
            raise ValueError(
                f"worst-case cost {worst:,.0f} exceeds the budget cap "
                f"{self.budget_cap:,.0f}; raise the cap, lower u_n, or use "
                "cheaper pools"
            )

    def _build_oracles(
        self,
        platform: CrowdPlatform,
        rng: np.random.Generator,
        tracer: Tracer | None = None,
    ) -> tuple[ComparisonOracle, ComparisonOracle]:
        pool1 = platform.pools[self.phase1.pool]
        pool2 = platform.pools[self.phase2.pool]
        naive_oracle = ComparisonOracle(
            self.instance,
            PlatformWorkerModel(
                platform,
                self.phase1.pool,
                judgments_per_task=self.phase1.judgments_per_comparison,
            ),
            rng,
            cost_per_comparison=(
                pool1.cost_per_judgment * self.phase1.judgments_per_comparison
            ),
            label=self.phase1.pool,
            tracer=tracer,
        )
        expert_oracle = ComparisonOracle(
            self.instance,
            PlatformWorkerModel(
                platform,
                self.phase2.pool,
                judgments_per_task=self.phase2.judgments_per_comparison,
                is_expert=True,
            ),
            rng,
            cost_per_comparison=(
                pool2.cost_per_judgment * self.phase2.judgments_per_comparison
            ),
            label=self.phase2.pool,
            tracer=tracer,
        )
        return naive_oracle, expert_oracle

    def execute(
        self,
        platform: CrowdPlatform,
        rng: np.random.Generator,
        tracer: Tracer | None = None,
    ) -> CrowdJobResult:
        """Run the job end to end and settle the bill."""
        self._check_budget(platform)
        tracer = resolve_tracer(tracer)
        start_cost = platform.ledger.total_cost
        start_logical = platform.logical_steps
        start_physical = platform.physical_steps_total

        with tracer.span("job.max", u_n=self.u_n, budget_cap=self.budget_cap):
            naive_oracle, expert_oracle = self._build_oracles(
                platform, rng, tracer=tracer
            )
            survivors = filter_candidates(
                naive_oracle, u_n=self.u_n, tracer=tracer
            ).survivors
            answer = self._phase2(expert_oracle, survivors, rng, tracer=tracer)

        return CrowdJobResult(
            answer=answer,
            survivors=survivors,
            total_cost=platform.ledger.total_cost - start_cost,
            naive_comparisons=naive_oracle.comparisons,
            expert_comparisons=expert_oracle.comparisons,
            logical_steps=platform.logical_steps - start_logical,
            physical_steps=platform.physical_steps_total - start_physical,
        )

    def _phase2(
        self,
        expert_oracle: ComparisonOracle,
        survivors: np.ndarray,
        rng: np.random.Generator,
        tracer: Tracer | None = None,
    ) -> list[int]:
        if len(survivors) == 1:
            return [int(survivors[0])]
        return [two_maxfind(expert_oracle, survivors, tracer=tracer).winner]


class CrowdTopKJob(CrowdMaxJob):
    """A TOP-k query executed through a crowdsourcing platform.

    Phase 1 filters with the inflated parameter ``u_n + k - 1`` (see
    :mod:`repro.core.topk`); phase 2 ranks the survivors with an expert
    all-play-all and returns the best ``k``.
    """

    kind: Literal["topk"] = "topk"  # type: ignore[assignment]

    def __init__(
        self,
        instance: ProblemInstance | np.ndarray,
        u_n: int,
        k: int,
        phase1: JobPhaseConfig,
        phase2: JobPhaseConfig,
        budget_cap: float | None = None,
    ):
        if k < 1:
            raise ValueError("k must be at least 1")
        super().__init__(instance, u_n, phase1, phase2, budget_cap)
        self.k = int(k)

    def worst_case_cost(self, platform: CrowdPlatform) -> float:
        n = len(
            self.instance.values
            if isinstance(self.instance, ProblemInstance)
            else self.instance
        )
        inflated = self.u_n + self.k - 1
        pool1 = platform.pools[self.phase1.pool]
        pool2 = platform.pools[self.phase2.pool]
        naive_wc = (
            filter_comparisons_upper_bound(n, inflated)
            * self.phase1.judgments_per_comparison
            * pool1.cost_per_judgment
        )
        expert_wc = (
            all_play_all_comparisons(survivor_upper_bound(inflated))
            * self.phase2.judgments_per_comparison
            * pool2.cost_per_judgment
        )
        return naive_wc + expert_wc

    def execute(
        self,
        platform: CrowdPlatform,
        rng: np.random.Generator,
        tracer: Tracer | None = None,
    ) -> CrowdJobResult:
        self._check_budget(platform)
        tracer = resolve_tracer(tracer)
        start_cost = platform.ledger.total_cost
        start_logical = platform.logical_steps
        start_physical = platform.physical_steps_total

        with tracer.span("job.topk", u_n=self.u_n, k=self.k):
            naive_oracle, expert_oracle = self._build_oracles(
                platform, rng, tracer=tracer
            )
            survivors = filter_candidates(
                naive_oracle, u_n=self.u_n + self.k - 1, tracer=tracer
            ).survivors
            if len(survivors) == 1:
                ranking = [int(survivors[0])]
            else:
                tournament = play_all_play_all(expert_oracle, survivors)
                order = np.argsort(-tournament.wins, kind="stable")
                ranking = [int(e) for e in tournament.elements[order][: self.k]]
        return CrowdJobResult(
            answer=ranking,
            survivors=survivors,
            total_cost=platform.ledger.total_cost - start_cost,
            naive_comparisons=naive_oracle.comparisons,
            expert_comparisons=expert_oracle.comparisons,
            logical_steps=platform.logical_steps - start_logical,
            physical_steps=platform.physical_steps_total - start_physical,
        )
