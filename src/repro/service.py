"""Compatibility alias for :mod:`repro.jobs`.

The in-process job layer used to live here; it moved to
:mod:`repro.jobs` when the HTTP serving layer
(:mod:`repro.service_http`) claimed the "service" name for the network
surface.  This module re-exports the job layer unchanged so existing
``repro.service`` imports keep working — new code should import from
:mod:`repro.api` (stable facade) or :mod:`repro.jobs` directly.
"""

from __future__ import annotations

from .jobs import (
    WIRE_SCHEMA,
    BudgetExceededError,
    CrowdJobResult,
    CrowdMaxJob,
    CrowdTopKJob,
    JobPhaseConfig,
    ResiliencePolicy,
)

__all__ = [
    "WIRE_SCHEMA",
    "JobPhaseConfig",
    "ResiliencePolicy",
    "CrowdJobResult",
    "BudgetExceededError",
    "CrowdMaxJob",
    "CrowdTopKJob",
]
