"""Budget-planning experiment (the Mo et al. comparison point).

Related work §2: Mo et al. "compute the number of workers whom to ask
the same question such as to achieve the best accuracy with a fixed
available budget."  This experiment runs that planner across budgets in
the two regimes the paper contrasts:

* the probabilistic regime (single-vote accuracy above 1/2): more
  budget buys more redundancy and the accuracy climbs toward 1;
* the threshold regime (hard questions, accuracy at 1/2): the planner
  correctly refuses to buy redundancy — accuracy is flat no matter the
  budget, and the money is better spent on an expert, which the last
  column quantifies (expert votes affordable with the same budget).
"""

from __future__ import annotations

import numpy as np

from ..core.budget import optimal_redundancy
from .base import TableResult

__all__ = ["run_budget_planning"]


def run_budget_planning(
    rng: np.random.Generator | None = None,
    n_questions: int = 50,
    budgets: tuple[float, ...] = (50.0, 150.0, 350.0, 750.0, 1550.0),
    p_easy: float = 0.7,
    p_hard: float = 0.5,
    expert_cost_ratio: float = 10.0,
) -> TableResult:
    """Optimal redundancy plans across budgets, easy vs hard questions.

    ``rng`` is accepted for harness uniformity; the computation is
    exact (closed-form binomials), so no randomness is used.
    """
    table = TableResult(
        table_id="budget-planning",
        title=(
            f"budget-optimal redundancy ({n_questions} questions, "
            f"p_easy={p_easy:g}, p_hard={p_hard:g}, "
            f"expert {expert_cost_ratio:g}x the naive price)"
        ),
        headers=[
            "budget",
            "easy: votes/question",
            "easy: accuracy",
            "hard: votes/question",
            "hard: accuracy",
            "expert votes affordable",
        ],
    )
    for budget in budgets:
        easy = optimal_redundancy(p_easy, n_questions, budget)
        hard = optimal_redundancy(p_hard, n_questions, budget)
        expert_votes = int(budget // (n_questions * expert_cost_ratio))
        table.add_row(
            [
                budget,
                easy.votes_per_question,
                easy.accuracy,
                hard.votes_per_question,
                hard.accuracy,
                expert_votes,
            ]
        )
    table.notes.append(
        "easy questions: accuracy climbs toward 1 with the budget; hard "
        "(threshold-regime) questions: flat at 0.5 — the optimal plan "
        "buys one vote and banks the rest, because only an expert helps"
    )
    return table
