"""Expert discovery + expert-aware max-finding, end to end.

Section 3.3, Remarks: "one can use the aforementioned algorithms
[the expert-finding literature] to find a group of experts and then use
our algorithm to exploit their additional skills".  This experiment
closes that loop inside the simulator:

1. a heterogeneous pool (continuous per-worker thresholds, see
   :mod:`repro.workers.continuous`) answers a calibration batch with
   several judgments per task;
2. :func:`repro.platform.reliability.score_workers` ranks the pool by
   agreement — no gold needed;
3. the top-ranked workers are *promoted* to the expert class and the
   two-phase algorithm runs with them, compared against (a) treating
   the whole pool as one naive class and (b) an oracle that knows the
   true per-worker thresholds.

Expected: discovered experts recover most of the accuracy gap between
the naive-only and true-expert configurations.
"""

from __future__ import annotations

import numpy as np

from ..core.filter_phase import filter_candidates
from ..core.generators import planted_instance, uniform_instance
from ..core.instance import ProblemInstance
from ..core.oracle import ComparisonOracle
from ..core.tournament import all_pairs
from ..core.two_maxfind import two_maxfind
from ..platform.job import ComparisonTask
from ..platform.platform import CrowdPlatform
from ..platform.reliability import score_workers, select_experts
from ..platform.workforce import WorkerPool
from ..workers.base import WorkerModel
from ..workers.continuous import sample_threshold_workers
from .base import TableResult

__all__ = ["run_expert_discovery"]


class _RosterModel(WorkerModel):
    """Answer each comparison with a random member of a worker roster."""

    def __init__(self, models: list[WorkerModel], is_expert: bool = False):
        if not models:
            raise ValueError("the roster must not be empty")
        self.models = models
        self.is_expert = is_expert

    def decide(
        self,
        values_i: np.ndarray,
        values_j: np.ndarray,
        rng: np.random.Generator,
        indices_i: np.ndarray | None = None,
        indices_j: np.ndarray | None = None,
    ) -> np.ndarray:
        out = np.empty(len(values_i), dtype=bool)
        picks = rng.integers(0, len(self.models), size=len(values_i))
        for pos in range(len(values_i)):
            model = self.models[int(picks[pos])]
            out[pos] = model.decide_single(  # repro-lint: disable=VEC001 -- each pair routes to a different per-worker model
                float(values_i[pos]),
                float(values_j[pos]),
                rng,
                None if indices_i is None else int(indices_i[pos]),
                None if indices_j is None else int(indices_j[pos]),
            )
        return out


def _pipeline_rank(
    instance: ProblemInstance,
    naive_model: WorkerModel,
    expert_model: WorkerModel,
    u_n: int,
    rng: np.random.Generator,
) -> int:
    naive_oracle = ComparisonOracle(instance, naive_model, rng)
    survivors = filter_candidates(naive_oracle, u_n=u_n).survivors
    expert_oracle = ComparisonOracle(instance, expert_model, rng)
    winner = two_maxfind(expert_oracle, survivors).winner
    return instance.rank_of(winner)


def run_expert_discovery(
    rng: np.random.Generator,
    n: int = 300,
    u_n: int = 8,
    pool_size: int = 30,
    n_experts: int = 5,
    calibration_tasks: int = 80,
    judgments_per_task: int = 7,
    trials: int = 3,
) -> TableResult:
    """Discover experts by agreement, then run the two-phase algorithm."""
    table = TableResult(
        table_id="expert-discovery",
        title=(
            f"agreement-discovered experts vs known experts "
            f"(pool={pool_size}, promoted={n_experts})"
        ),
        headers=["configuration", "rank (avg)", "trials"],
    )
    ranks: dict[str, list[int]] = {
        "naive-only (whole pool)": [],
        "discovered experts": [],
        "true experts (oracle knowledge)": [],
    }
    overlaps: list[float] = []
    for _ in range(trials):
        # Heterogeneous roster: thresholds lognormal around 1.
        roster = sample_threshold_workers(pool_size, rng)
        true_expert_ids = sorted(
            range(pool_size), key=lambda w: roster[w].delta
        )[:n_experts]

        # Calibration batch through the platform (agreement evidence).
        # The calibration values are packed tightly so that many pairs
        # fall between the fine and coarse thresholds: only on such
        # pairs does agreement separate experts from the rest (on easy
        # pairs everyone agrees, on impossible pairs nobody does).
        pool = WorkerPool.from_models("pool", roster)
        platform = CrowdPlatform({"pool": pool}, rng)
        calib = uniform_instance(
            calibration_tasks + 1, rng, low=0.0, high=3.0, name="calibration"
        )
        ii, jj = all_pairs(np.arange(calib.n, dtype=np.intp))
        take = rng.choice(len(ii), size=calibration_tasks, replace=False)
        tasks = [
            ComparisonTask(
                task_id=t,
                first=int(ii[k]),
                second=int(jj[k]),
                value_first=calib.value(int(ii[k])),
                value_second=calib.value(int(jj[k])),
                required_judgments=judgments_per_task,
            )
            for t, k in enumerate(take.tolist())
        ]
        platform.submit_batch("pool", tasks)
        report = score_workers(platform.judgment_log)
        discovered = select_experts(report, top_k=n_experts)
        overlaps.append(
            len(set(discovered) & set(true_expert_ids)) / n_experts
        )

        # Evaluation instance; delta_e chosen near the experts' scale.
        instance = planted_instance(
            n=n, u_n=u_n, u_e=3, delta_n=2.0, delta_e=0.4, rng=rng
        )
        whole_pool = _RosterModel(roster)
        discovered_model = _RosterModel(
            [roster[w] for w in discovered], is_expert=True
        )
        true_model = _RosterModel(
            [roster[w] for w in true_expert_ids], is_expert=True
        )
        ranks["naive-only (whole pool)"].append(
            _pipeline_rank(instance, whole_pool, whole_pool, u_n, rng)
        )
        ranks["discovered experts"].append(
            _pipeline_rank(instance, whole_pool, discovered_model, u_n, rng)
        )
        ranks["true experts (oracle knowledge)"].append(
            _pipeline_rank(instance, whole_pool, true_model, u_n, rng)
        )

    for name, samples in ranks.items():
        table.add_row([name, float(np.mean(samples)), trials])
    table.notes.append(
        f"discovered/true expert overlap: {float(np.mean(overlaps)):.0%} on average"
    )
    table.notes.append(
        "expected: discovered experts close most of the gap between the "
        "naive-only and oracle-knowledge configurations (Section 3.3 Remarks)"
    )
    return table
