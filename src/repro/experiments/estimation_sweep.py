"""Figures 6, 7, 10 and the survival statistics of Section 5.2.

Section 5.2 studies what happens when ``u_n(n)`` is mis-estimated,
parameterised by the *estimation factor* — "the ratio between the
estimated and the true value of u_n(n)" — over
``{0.2, 0.5, 0.8, 1, 1.2, 2}``:

* **Figure 6** — accuracy (average true rank) per factor vs n;
* **Figure 7** — average cost per factor vs n (``c_e in {10,20,50}``);
* **Figure 10** — worst-case cost per factor vs n;
* in-text survival rates — how often the phase-1 set still contains
  the true maximum ("99% of the times" at factor 0.8, "82%" at 0.5,
  "38%" at 0.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.bounds import (
    filter_comparisons_upper_bound,
    monetary_cost,
    survivor_upper_bound,
    two_maxfind_comparisons_upper_bound,
)
from ..core.generators import planted_instance
from ..core.maxfinder import ExpertAwareMaxFinder
from ..parallel import RunResult, RunSpec, execute_runs, spawn_run_seeds
from ..workers.expert import make_worker_classes
from .base import FigureResult, TableResult
from .sweep import PAPER_NS

__all__ = [
    "PAPER_ESTIMATION_FACTORS",
    "EstimationConfig",
    "EstimationCell",
    "EstimationData",
    "run_estimation_sweep",
    "figure6_from_estimation",
    "figure7_from_estimation",
    "figure10_from_estimation",
    "survival_table",
]

#: The paper's estimation-factor grid.
PAPER_ESTIMATION_FACTORS = (0.2, 0.5, 0.8, 1.0, 1.2, 2.0)


@dataclass(frozen=True)
class EstimationConfig:
    """Parameters of the Section 5.2 sweep."""

    ns: tuple[int, ...] = PAPER_NS
    u_n: int = 10
    u_e: int = 5
    factors: tuple[float, ...] = PAPER_ESTIMATION_FACTORS
    trials: int = 5
    delta_n: float = 1.0
    delta_e: float = 0.25

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("trials must be positive")
        if any(f <= 0 for f in self.factors):
            raise ValueError("estimation factors must be positive")
        if self.u_e > self.u_n:
            raise ValueError("u_e must not exceed u_n")


@dataclass
class EstimationCell:
    """Measurements for one (n, factor) combination."""

    n: int
    factor: float
    estimated_u_n: int
    rank: list[int] = field(default_factory=list)
    naive: list[int] = field(default_factory=list)
    expert: list[int] = field(default_factory=list)
    max_survived: int = 0
    trials: int = 0

    @property
    def survival_rate(self) -> float:
        """Fraction of trials whose phase-1 set contained the true max."""
        if self.trials == 0:
            raise ValueError("no trials recorded")
        return self.max_survived / self.trials

    def mean(self, attribute: str) -> float:
        samples = getattr(self, attribute)
        if not samples:
            raise ValueError(f"no samples recorded for {attribute!r}")
        return float(np.mean(samples))

    @property
    def naive_wc(self) -> int:
        """Theory worst case for the *estimated* parameter."""
        return filter_comparisons_upper_bound(self.n, self.estimated_u_n)

    @property
    def expert_wc(self) -> int:
        return two_maxfind_comparisons_upper_bound(
            survivor_upper_bound(self.estimated_u_n)
        )


@dataclass
class EstimationData:
    """Full Section 5.2 sweep: a cell per (n, factor)."""

    config: EstimationConfig
    cells: dict[tuple[int, float], EstimationCell] = field(default_factory=dict)
    failures: list[RunResult] = field(default_factory=list)

    @property
    def ns(self) -> list[int]:
        return list(self.config.ns)

    def cell(self, n: int, factor: float) -> EstimationCell:
        """The measurements for one (n, estimation factor) pair."""
        return self.cells[(n, factor)]

    def factor_series(self, factor: float, attribute: str) -> list[float]:
        """Mean of ``attribute`` across n, for one estimation factor."""
        return [self.cell(n, factor).mean(attribute) for n in self.config.ns]


def _estimated_u(u_n: int, factor: float) -> int:
    """The mis-estimated parameter, floored at 1 (a u of 0 is illegal)."""
    return max(1, round(factor * u_n))


def _estimation_trial(
    rng: np.random.Generator, *, n: int, config: EstimationConfig
) -> list[dict]:
    """One independent (n, trial) run: every estimation factor on one
    shared trial instance (the paper's protocol — factors see the same
    instance so their curves are directly comparable)."""
    naive, expert = make_worker_classes(
        delta_n=config.delta_n, delta_e=config.delta_e
    )
    instance = planted_instance(
        n=n,
        u_n=config.u_n,
        u_e=config.u_e,
        delta_n=config.delta_n,
        delta_e=config.delta_e,
        rng=rng,
    )
    true_max = instance.max_index
    measurements: list[dict] = []
    for factor in config.factors:
        finder = ExpertAwareMaxFinder(
            naive=naive,
            expert=expert,
            u_n=_estimated_u(config.u_n, factor),
            phase2="two_maxfind",
        )
        result = finder.run(instance, rng)
        measurements.append(
            {
                "factor": factor,
                "rank": instance.rank_of(result.winner),
                "naive": result.naive_comparisons,
                "expert": result.expert_comparisons,
                "survived": bool(true_max in result.survivors),
            }
        )
    return measurements


def run_estimation_sweep(
    config: EstimationConfig, rng: np.random.Generator, jobs: int = 1
) -> EstimationData:
    """Run the Section 5.2 sweep.

    For every trial instance, Algorithm 1 is run once per estimation
    factor; survival is judged by whether the true maximum is in the
    phase-1 candidate set.

    Each (n, trial) run gets its own seed spawned from ``rng`` and the
    grid executes on ``jobs`` processes (``0`` for all cores) with
    bit-identical results for any ``jobs``; isolated run failures land
    in ``data.failures``.
    """
    grid = [
        (n, trial) for n in config.ns for trial in range(config.trials)
    ]
    seeds = spawn_run_seeds(rng, len(grid))
    specs = [
        RunSpec(
            index=i,
            fn=_estimation_trial,
            seed=seed,
            params={"n": n, "config": config},
            label=f"estimation[n={n},trial={trial}]",
        )
        for i, ((n, trial), seed) in enumerate(zip(grid, seeds))
    ]
    results = execute_runs(specs, jobs=jobs)

    data = EstimationData(config=config)
    for n in config.ns:
        for factor in config.factors:
            data.cells[(n, factor)] = EstimationCell(
                n=n, factor=factor, estimated_u_n=_estimated_u(config.u_n, factor)
            )
    for (n, _trial), run in zip(grid, results):
        if not run.ok:
            data.failures.append(run)
            continue
        for measurement in run.value:
            cell = data.cells[(n, measurement["factor"])]
            cell.rank.append(measurement["rank"])
            cell.naive.append(measurement["naive"])
            cell.expert.append(measurement["expert"])
            cell.trials += 1
            cell.max_survived += int(measurement["survived"])
    return data


def _factor_label(factor: float) -> str:
    if factor == 1.0:
        return "Alg 1"
    return f"Alg 1 ({factor:g}*un)"


def figure6_from_estimation(data: EstimationData) -> FigureResult:
    """Figure 6: accuracy vs n, one curve per estimation factor."""
    config = data.config
    figure = FigureResult(
        figure_id="fig6",
        title=(
            f"average real rank of max vs n under mis-estimated u_n "
            f"(u_n={config.u_n}, u_e={config.u_e})"
        ),
        x_label="n",
        x_values=data.ns,
    )
    for factor in config.factors:
        figure.add_series(_factor_label(factor), data.factor_series(factor, "rank"))
    figure.notes.append(
        "overestimation is harmless for accuracy; underestimation degrades "
        "it moderately (Section 5.2)"
    )
    return figure


def figure7_from_estimation(
    data: EstimationData, cost_expert: float, cost_naive: float = 1.0
) -> FigureResult:
    """Figure 7: average cost vs n per estimation factor at one c_e."""
    config = data.config
    figure = FigureResult(
        figure_id=f"fig7(ce={cost_expert:g})",
        title=(
            f"average cost vs n under mis-estimated u_n "
            f"(c_e={cost_expert:g}, u_n={config.u_n}, u_e={config.u_e})"
        ),
        x_label="n",
        x_values=data.ns,
    )
    for factor in config.factors:
        costs = [
            monetary_cost(xn, xe, cost_naive, cost_expert)
            for xn, xe in zip(
                data.factor_series(factor, "naive"),
                data.factor_series(factor, "expert"),
            )
        ]
        figure.add_series(_factor_label(factor) + " (avg)", costs)
    figure.notes.append("cost scales roughly linearly with the estimation factor")
    return figure


def figure10_from_estimation(
    data: EstimationData, cost_expert: float, cost_naive: float = 1.0
) -> FigureResult:
    """Figure 10: worst-case cost vs n per estimation factor at one c_e."""
    config = data.config
    figure = FigureResult(
        figure_id=f"fig10(ce={cost_expert:g})",
        title=(
            f"worst-case cost vs n under mis-estimated u_n "
            f"(c_e={cost_expert:g}, u_n={config.u_n}, u_e={config.u_e})"
        ),
        x_label="n",
        x_values=data.ns,
    )
    for factor in config.factors:
        costs = [
            monetary_cost(
                data.cell(n, factor).naive_wc,
                data.cell(n, factor).expert_wc,
                cost_naive,
                cost_expert,
            )
            for n in config.ns
        ]
        figure.add_series(_factor_label(factor) + " (wc)", costs)
    return figure


def survival_table(data: EstimationData) -> TableResult:
    """In-text Section 5.2 statistic: survival rate of the true max.

    Paper reference points: ~0.99 at factor 0.8, ~0.82 at 0.5, ~0.38
    at 0.2 (aggregated across n).
    """
    table = TableResult(
        table_id="sec5.2-survival",
        title="fraction of runs whose phase-1 candidate set contains the true max",
        headers=["estimation factor", "survival rate", "trials"],
    )
    for factor in data.config.factors:
        survived = sum(data.cell(n, factor).max_survived for n in data.config.ns)
        trials = sum(data.cell(n, factor).trials for n in data.config.ns)
        table.add_row([factor, survived / trials if trials else float("nan"), trials])
    table.notes.append("paper reference: 0.99 @ 0.8, 0.82 @ 0.5, 0.38 @ 0.2")
    return table
