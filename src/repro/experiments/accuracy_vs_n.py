"""Figure 3: accuracy (average true rank) as a function of n (§5.1).

"In Figure 3 we depict the true rank of the element returned for each
of them.  As expected, we can observe that the best approach is
2-MaxFind-expert, with our Algorithm following closely, whereas
2-MaxFind-naive returns an element with a much lower rank, which
worsens as u_n(n) increases."

One call produces one panel (one ``(u_n, u_e)`` setting); the paper's
figure has two panels — run both configs.
"""

from __future__ import annotations

import numpy as np

from .base import FigureResult
from .sweep import SweepConfig, SweepData, run_sweep

__all__ = ["figure3_from_sweep", "run_figure3"]


def figure3_from_sweep(data: SweepData) -> FigureResult:
    """Build the Figure 3 panel from an existing sweep."""
    config = data.config
    figure = FigureResult(
        figure_id="fig3",
        title=(
            f"average real rank of max vs n "
            f"(u_n={config.u_n}, u_e={config.u_e}, trials={config.trials})"
        ),
        x_label="n",
        x_values=data.ns,
    )
    figure.add_series("2-MaxFind-naive", data.series("tmf_naive_rank"))
    figure.add_series("Alg 1", data.series("alg1_rank"))
    figure.add_series("2-MaxFind-expert", data.series("tmf_expert_rank"))
    figure.notes.append(
        "expected ordering: 2-MaxFind-expert best, Alg 1 close behind, "
        "2-MaxFind-naive clearly worse (and worse for larger u_n)"
    )
    return figure


def run_figure3(
    config: SweepConfig, rng: np.random.Generator, jobs: int = 1
) -> tuple[FigureResult, SweepData]:
    """Run the sweep and derive the Figure 3 panel.

    The sweep data is returned too so Figures 4/5/9 can reuse it
    without re-simulating.  ``jobs`` fans the sweep grid out across
    processes (see :mod:`repro.parallel`); results are bit-identical
    for any value.
    """
    data = run_sweep(config, rng, jobs=jobs)
    return figure3_from_sweep(data), data
