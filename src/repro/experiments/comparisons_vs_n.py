"""Figure 4: number of comparisons as a function of n, log scale (§5.1).

Series, matching the paper's legend:

* ``Alg 1 naive (wc)`` — the theory bound ``4 n u_n`` (Lemma 3);
* ``Alg 1 naive (avg)`` — measured phase-1 comparisons;
* ``2-MaxFind-naive (wc)`` / ``2-MaxFind-expert (wc)`` — measured on
  the adversarial instances of Section 5;
* ``2-MaxFind-exp/naive (avg)`` — the two averages "are very close to
  each other, and we depict them with a single curve" (their mean);
* ``Alg 1 expert (wc)`` — ``2 (2 u_n - 1)^{3/2}`` (Theorem 1);
* ``Alg 1 expert (avg)`` — measured phase-2 comparisons ("it only
  depends on the leftover set, and is expected to stay constant as n
  grows").
"""

from __future__ import annotations

from .base import FigureResult
from .sweep import SweepData

__all__ = ["figure4_from_sweep"]


def figure4_from_sweep(data: SweepData) -> FigureResult:
    """Build the Figure 4 panel from an existing sweep."""
    config = data.config
    figure = FigureResult(
        figure_id="fig4",
        title=(
            f"number of comparisons vs n, log-scale y "
            f"(u_n={config.u_n}, u_e={config.u_e})"
        ),
        x_label="n",
        x_values=data.ns,
    )
    figure.add_series("Alg 1 naive (wc)", data.wc_series("alg1_naive_wc"))
    figure.add_series("Alg 1 naive (avg)", data.series("alg1_naive"))
    figure.add_series("2-MaxFind-naive (wc)", data.wc_series("tmf_naive_wc"))
    figure.add_series("2-MaxFind-expert (wc)", data.wc_series("tmf_expert_wc"))
    joint_avg = [
        0.5 * (a + b)
        for a, b in zip(
            data.series("tmf_naive_comparisons"),
            data.series("tmf_expert_comparisons"),
        )
    ]
    figure.add_series("2-MaxFind-exp/naive (avg)", joint_avg)
    figure.add_series("Alg 1 expert (wc)", data.wc_series("alg1_expert_wc"))
    figure.add_series("Alg 1 expert (avg)", data.series("alg1_expert"))
    figure.notes.append(
        "Alg 1's expert comparisons stay (roughly) constant in n; its "
        "naive comparisons grow linearly and dominate 2-MaxFind's count"
    )
    return figure
