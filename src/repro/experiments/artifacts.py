"""Atomic, durable artifact writes — the one tmp+fsync+rename helper.

Every artifact the library publishes (benchmark baselines, experiment
CSVs, durability outcomes) goes through :func:`write_atomic`:

1. the payload is written to a private temp file *in the target
   directory* (so the final rename never crosses a filesystem),
2. the temp file is **fsync'd** — without this, a rename-only scheme
   can publish a correctly-named but empty/partial file after a power
   loss, because the rename (metadata) may reach the disk before the
   data blocks do,
3. ``os.replace`` atomically swaps it into place, and
4. the parent directory is fsync'd so the rename itself is durable.

Concurrent writers (pytest-xdist benchmark shards, parallel CI jobs)
each land a complete file and readers can never observe a partial
write.  The ``DUR001`` repro-lint rule enforces that ``src`` code does
not bypass this module with bare ``open(..., "w")`` writes; see
``docs/DURABILITY.md`` for the full durability contract.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable

__all__ = [
    "fsync_file",
    "fsync_dir",
    "write_atomic",
    "write_text_atomic",
    "write_json_atomic",
    "append_jsonl_atomic",
]


def fsync_file(path: str | Path) -> None:
    """Flush a file's data blocks to stable storage."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str | Path) -> None:
    """Flush a directory entry (making a rename durable).

    Some filesystems refuse ``fsync`` on a directory fd (and Windows
    has no equivalent); failing to harden the *rename* only risks the
    pre-rename name surviving a crash, never a torn file, so errors
    are deliberately swallowed.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_atomic(path: str | Path, write: Callable[[Path], None]) -> Path:
    """Produce ``path`` atomically and durably.

    ``write`` fills a private temp file (same directory, so the rename
    stays on one filesystem); the temp file is fsync'd before being
    renamed into place and the parent directory is fsync'd after, so a
    crash at any point leaves either the old file or the complete new
    one — never a torn or empty artifact.  On any failure the temp
    file is removed and nothing is published.  Parent directories are
    created.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        write(tmp)
        fsync_file(tmp)
        os.replace(tmp, path)
        fsync_dir(path.parent)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def write_text_atomic(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (see :func:`write_atomic`)."""

    def _fill(tmp: Path) -> None:
        tmp.write_text(text, encoding="utf-8")  # repro-lint: disable=DUR001 -- atomic tmp body

    return write_atomic(path, _fill)


def write_json_atomic(path: str | Path, payload: object) -> Path:
    """Serialise ``payload`` as pretty JSON and write it atomically."""
    return write_text_atomic(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def append_jsonl_atomic(path: str | Path, record: dict) -> Path:
    """Append one compact-JSON record line to a JSONL log, atomically.

    The whole file is rewritten through :func:`write_atomic` (read the
    existing lines, add one, publish via tmp+fsync+rename), so a crash
    mid-append leaves either the old log or the extended one — never a
    torn trailing line.  History logs are small (one line per bench
    run), so the rewrite cost is negligible; for high-volume appends
    use :class:`repro.durability.JobJournal` instead.
    """
    path = Path(path)
    existing = path.read_text(encoding="utf-8") if path.exists() else ""
    if existing and not existing.endswith("\n"):
        existing += "\n"
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    return write_text_atomic(path, existing + line)
