"""Compose a single reproduction report from archived results.

``repro-experiments all --out DIR`` leaves one CSV per table/figure;
the benchmark harness additionally writes ``.txt`` renderings under
``results/``.  :func:`compose_report` folds a directory of archived
results (text renderings and/or JSON saved via
:mod:`repro.experiments.io`) into one markdown document — the artifact
to attach to a reproduction write-up.
"""

from __future__ import annotations

from pathlib import Path

from .artifacts import write_text_atomic
from .io import load_result

__all__ = ["compose_report", "write_report"]

_HEADER = """# Reproduction report

Paper: *The Importance of Being Expert: Efficient Max-Finding in
Crowdsourcing* (SIGMOD 2015).

Each section below is one regenerated table or figure (as printed by
the harness).  See EXPERIMENTS.md for the paper-vs-measured analysis
and DESIGN.md for the experiment-to-module index.
"""


def compose_report(results_dir: str | Path) -> str:
    """Build the markdown report from a directory of archived results.

    Picks up ``*.txt`` renderings (as emitted by the benchmark harness)
    and ``*.json`` results (as written by :func:`repro.experiments.io.
    save_result`), sorted by name; other files are ignored.
    """
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise ValueError(f"{results_dir} is not a directory")
    sections: list[str] = [_HEADER]
    found = 0
    for path in sorted(results_dir.glob("*.txt")):
        body = path.read_text().strip()
        if not body:
            continue
        sections.append(f"## {path.stem}\n\n```\n{body}\n```\n")
        found += 1
    for path in sorted(results_dir.glob("*.json")):
        try:
            result = load_result(path)
        except (ValueError, KeyError):
            continue
        sections.append(f"## {path.stem}\n\n```\n{result.to_text()}\n```\n")
        found += 1
    if found == 0:
        raise ValueError(
            f"no archived results found in {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` or "
            "`repro-experiments all --out <dir>` first"
        )
    return "\n".join(sections)


def write_report(results_dir: str | Path, output_path: str | Path) -> Path:
    """Compose the report and write it to ``output_path`` atomically."""
    return write_text_atomic(output_path, compose_report(results_dir))
