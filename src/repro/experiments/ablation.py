"""Ablation benches for the design choices DESIGN.md calls out.

Four ablations, each isolating one design decision of the paper:

1. **Comparison memoization** (Appendix A, first optimisation) — fresh
   comparisons with and without the n x n result table.
2. **Global loss counters** (Appendix A, second optimisation) —
   phase-1 comparisons and rounds with and without cross-round
   distinct-loss culling.
3. **Phase-2 algorithm** (§4.1.2's three options) — expert comparisons
   and returned rank for 2-MaxFind vs the randomized Ajtai algorithm
   vs a plain all-play-all, demonstrating the paper's claim that the
   randomized option's constants dominate at practical sizes.
4. **Filter group multiplier** — the paper fixes ``g = 4 u_n``; the
   sweep shows how cost and survivor counts respond to the multiplier.
"""

from __future__ import annotations

import numpy as np

from ..core.filter_phase import filter_candidates
from ..core.generators import planted_instance, uniform_instance
from ..core.oracle import ComparisonOracle
from ..core.randomized_maxfind import randomized_maxfind
from ..core.tournament import play_all_play_all
from ..core.two_maxfind import two_maxfind
from ..workers.threshold import ThresholdWorkerModel
from .base import TableResult

__all__ = [
    "run_memoization_ablation",
    "run_loss_counter_ablation",
    "run_phase2_ablation",
    "run_group_multiplier_ablation",
]


def run_memoization_ablation(
    rng: np.random.Generator,
    n: int = 1000,
    u_n: int = 10,
    trials: int = 3,
) -> TableResult:
    """Ablation 1: oracle memoization on vs off."""
    model = ThresholdWorkerModel(delta=1.0)
    table = TableResult(
        table_id="ablation-memo",
        title=f"Appendix-A memoization: fresh comparisons (n={n}, u_n={u_n})",
        headers=["memoize", "filter comparisons (avg)", "2-MaxFind comparisons (avg)"],
    )
    # Both arms see the same instances and the same worker randomness
    # (seeded identically), so the delta is the memoization effect alone.
    filter_counts: dict[bool, list[int]] = {True: [], False: []}
    tmf_counts: dict[bool, list[int]] = {True: [], False: []}
    for _ in range(trials):
        instance = planted_instance(
            n=n, u_n=u_n, u_e=u_n, delta_n=1.0, delta_e=1.0, rng=rng
        )
        arm_seed = int(rng.integers(0, 2**63 - 1))
        for memoize in (True, False):
            arm_rng = np.random.default_rng(arm_seed)
            oracle = ComparisonOracle(instance, model, arm_rng, memoize=memoize)
            filter_counts[memoize].append(
                filter_candidates(oracle, u_n=u_n).comparisons
            )
            oracle2 = ComparisonOracle(instance, model, arm_rng, memoize=memoize)
            tmf_counts[memoize].append(two_maxfind(oracle2).comparisons)
    for memoize in (True, False):
        table.add_row(
            [
                "on" if memoize else "off",
                float(np.mean(filter_counts[memoize])),
                float(np.mean(tmf_counts[memoize])),
            ]
        )
    table.notes.append("memoization never pays twice for the same pair")
    return table


def run_loss_counter_ablation(
    rng: np.random.Generator,
    n: int = 1000,
    u_n: int = 10,
    trials: int = 3,
) -> TableResult:
    """Ablation 2: global distinct-loss counters on vs off."""
    model = ThresholdWorkerModel(delta=1.0)
    table = TableResult(
        table_id="ablation-losscounters",
        title=f"Appendix-A global loss counters (n={n}, u_n={u_n})",
        headers=[
            "loss counters",
            "comparisons (avg)",
            "rounds (avg)",
            "survivors (avg)",
            "max survived",
        ],
    )
    for enabled in (False, True):
        comparisons: list[int] = []
        rounds: list[int] = []
        survivors: list[int] = []
        max_survived = 0
        for _ in range(trials):
            instance = planted_instance(
                n=n, u_n=u_n, u_e=u_n, delta_n=1.0, delta_e=1.0, rng=rng
            )
            oracle = ComparisonOracle(instance, model, rng)
            result = filter_candidates(
                oracle, u_n=u_n, use_global_loss_counters=enabled
            )
            comparisons.append(result.comparisons)
            rounds.append(result.n_rounds)
            survivors.append(len(result.survivors))
            max_survived += int(instance.max_index in result.survivors)
        table.add_row(
            [
                "on" if enabled else "off",
                float(np.mean(comparisons)),
                float(np.mean(rounds)),
                float(np.mean(survivors)),
                f"{max_survived}/{trials}",
            ]
        )
    table.notes.append(
        "counters may only discard elements Lemma 1 already rules out, so "
        "the maximum must survive in both configurations"
    )
    return table


def run_phase2_ablation(
    rng: np.random.Generator,
    sizes: tuple[int, ...] = (9, 19, 39, 79),
    delta: float = 1.0,
    trials: int = 3,
) -> TableResult:
    """Ablation 3: phase-2 algorithm choice on candidate sets of size s.

    The candidate sets are dense (every element within ``2 delta`` of
    the maximum), the regime phase 2 actually faces.
    """
    model = ThresholdWorkerModel(delta=delta, is_expert=True)
    table = TableResult(
        table_id="ablation-phase2",
        title="phase-2 options (Section 4.1.2): expert comparisons and rank",
        headers=["s", "algorithm", "comparisons (avg)", "rank (avg)"],
    )
    for s in sizes:
        for name in ("two_maxfind", "randomized", "all_play_all"):
            counts: list[int] = []
            ranks: list[float] = []
            for _ in range(trials):
                instance = uniform_instance(s, rng, low=0.0, high=2.0 * delta)
                oracle = ComparisonOracle(instance, model, rng)
                if name == "two_maxfind":
                    winner = two_maxfind(oracle).winner
                elif name == "randomized":
                    winner = randomized_maxfind(oracle, rng=rng, c=1).winner
                else:
                    winner = play_all_play_all(
                        oracle, np.arange(s, dtype=np.intp)
                    ).winner
                counts.append(oracle.comparisons)
                ranks.append(instance.rank_of(winner))
            table.add_row([s, name, float(np.mean(counts)), float(np.mean(ranks))])
    table.notes.append(
        "expected: the randomized option is asymptotically linear but its "
        "constants keep it above 2-MaxFind at these sizes (the paper's "
        "reason for running 2-MaxFind in practice)"
    )
    return table


def run_group_multiplier_ablation(
    rng: np.random.Generator,
    n: int = 1000,
    u_n: int = 10,
    multipliers: tuple[int, ...] = (2, 3, 4, 6, 8),
    trials: int = 3,
) -> TableResult:
    """Ablation 4: the filter group-size multiplier (paper: 4)."""
    model = ThresholdWorkerModel(delta=1.0)
    table = TableResult(
        table_id="ablation-groupsize",
        title=f"filter group multiplier sweep (n={n}, u_n={u_n})",
        headers=[
            "multiplier",
            "comparisons (avg)",
            "rounds (avg)",
            "survivors (avg)",
            "max survived",
        ],
    )
    for multiplier in multipliers:
        comparisons: list[int] = []
        rounds: list[int] = []
        survivors: list[int] = []
        max_survived = 0
        for _ in range(trials):
            instance = planted_instance(
                n=n, u_n=u_n, u_e=u_n, delta_n=1.0, delta_e=1.0, rng=rng
            )
            oracle = ComparisonOracle(instance, model, rng)
            result = filter_candidates(oracle, u_n=u_n, group_multiplier=multiplier)
            comparisons.append(result.comparisons)
            rounds.append(result.n_rounds)
            survivors.append(len(result.survivors))
            max_survived += int(instance.max_index in result.survivors)
        table.add_row(
            [
                multiplier,
                float(np.mean(comparisons)),
                float(np.mean(rounds)),
                float(np.mean(survivors)),
                f"{max_survived}/{trials}",
            ]
        )
    table.notes.append(
        "larger groups pay more per round but converge in fewer rounds; "
        "the paper's choice of 4 balances the two"
    )
    return table
