"""The Section 5.1 simulation sweep shared by Figures 3, 4, 5 and 9.

One sweep runs, for each dataset size ``n``, a number of trials on
random (planted) instances and measures, for the three competitors —

* **Alg 1** — the paper's two-phase expert-aware algorithm,
* **2-MaxFind-naive** — 2-MaxFind run with naive workers only,
* **2-MaxFind-expert** — 2-MaxFind run with expert workers only —

the returned element's true rank and the naive/expert comparison
counts.  Worst cases follow the paper's protocol: "For our algorithm we
considered the upper bound predicted by the theory" (``4 n u_n`` naive,
``2 (2 u_n - 1)^{3/2}`` expert), while the 2-MaxFind worst cases are
*measured* on the adversarial instances/comparators of Section 5 ("we
make element x lose" below the threshold).

Figures 3, 4, 5 and 9 are views over one :class:`SweepData`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.bounds import (
    filter_comparisons_upper_bound,
    survivor_upper_bound,
    two_maxfind_comparisons_upper_bound,
)
from ..core.generators import adversarial_instance, planted_instance
from ..core.maxfinder import ExpertAwareMaxFinder
from ..core.oracle import ComparisonOracle
from ..core.two_maxfind import two_maxfind
from ..parallel import RunResult, RunSpec, execute_runs, spawn_run_seeds
from ..workers.adversarial import AdversarialWorkerModel
from ..workers.expert import make_worker_classes

__all__ = ["SweepConfig", "SweepPoint", "SweepData", "run_sweep"]

#: Default dataset sizes of the paper's sweeps.
PAPER_NS = (1000, 2000, 3000, 4000, 5000)


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of one Section 5.1 sweep.

    ``u_n``/``u_e`` are realised *exactly* by the planted generator;
    ``delta_n``/``delta_e`` are the corresponding thresholds (their
    absolute scale is arbitrary — only the induced ``u`` counts matter).
    """

    ns: tuple[int, ...] = PAPER_NS
    u_n: int = 10
    u_e: int = 5
    trials: int = 5
    delta_n: float = 1.0
    delta_e: float = 0.25
    measure_worst_case: bool = True

    def __post_init__(self) -> None:
        if self.u_e > self.u_n:
            raise ValueError("u_e must not exceed u_n")
        if self.trials < 1:
            raise ValueError("trials must be positive")
        if min(self.ns) <= 2 * self.u_n:
            raise ValueError("every n must exceed 2 * u_n")


@dataclass
class SweepPoint:
    """All measurements for one dataset size ``n``."""

    n: int
    alg1_rank: list[int] = field(default_factory=list)
    alg1_naive: list[int] = field(default_factory=list)
    alg1_expert: list[int] = field(default_factory=list)
    tmf_naive_rank: list[int] = field(default_factory=list)
    tmf_naive_comparisons: list[int] = field(default_factory=list)
    tmf_expert_rank: list[int] = field(default_factory=list)
    tmf_expert_comparisons: list[int] = field(default_factory=list)
    alg1_naive_wc: int = 0
    alg1_expert_wc: int = 0
    tmf_naive_wc: int = 0
    tmf_expert_wc: int = 0

    def mean(self, attribute: str) -> float:
        """Trial mean of one of the list-valued measurements."""
        samples = getattr(self, attribute)
        if not samples:
            raise ValueError(f"no samples recorded for {attribute!r}")
        return float(np.mean(samples))


@dataclass
class SweepData:
    """One full sweep: configuration plus one point per ``n``.

    ``failures`` records any runs the execution engine isolated (see
    :mod:`repro.parallel`): their measurements are simply absent from
    the point lists, the rest of the sweep is intact.
    """

    config: SweepConfig
    points: list[SweepPoint] = field(default_factory=list)
    failures: list[RunResult] = field(default_factory=list)

    @property
    def ns(self) -> list[int]:
        return [point.n for point in self.points]

    def series(self, attribute: str) -> list[float]:
        """Trial means of ``attribute`` across the sweep, in n order."""
        return [point.mean(attribute) for point in self.points]

    def wc_series(self, attribute: str) -> list[int]:
        """Worst-case scalars of ``attribute`` across the sweep."""
        return [int(getattr(point, attribute)) for point in self.points]


def _measure_adversarial_two_maxfind(
    n: int, u_n: int, delta: float, rng: np.random.Generator, draws: int = 3
) -> int:
    """Measured worst-case 2-MaxFind comparisons (Section 5 protocol).

    The count depends on where the maximum lands in the candidate
    ordering (an early maximal pivot eliminates the far cluster
    quickly), so the worst case is taken over several instance draws.
    """
    worst = 0
    for _ in range(draws):
        instance = adversarial_instance(n=n, u_n=u_n, delta_n=delta, rng=rng)
        model = AdversarialWorkerModel(delta=delta, policy="first_loses")
        oracle = ComparisonOracle(instance, model, rng)
        worst = max(worst, two_maxfind(oracle).comparisons)
    return worst


def _sweep_trial(rng: np.random.Generator, *, n: int, config: SweepConfig) -> dict[str, Any]:
    """One independent (n, trial) run: the three competitors on one instance."""
    naive, expert = make_worker_classes(
        delta_n=config.delta_n, delta_e=config.delta_e
    )
    finder = ExpertAwareMaxFinder(
        naive=naive, expert=expert, u_n=config.u_n, phase2="two_maxfind"
    )
    instance = planted_instance(
        n=n,
        u_n=config.u_n,
        u_e=config.u_e,
        delta_n=config.delta_n,
        delta_e=config.delta_e,
        rng=rng,
    )
    result = finder.run(instance, rng)
    naive_oracle = ComparisonOracle(instance, naive.model, rng)
    tmf_n = two_maxfind(naive_oracle)
    expert_oracle = ComparisonOracle(instance, expert.model, rng)
    tmf_e = two_maxfind(expert_oracle)
    return {
        "alg1_rank": instance.rank_of(result.winner),
        "alg1_naive": result.naive_comparisons,
        "alg1_expert": result.expert_comparisons,
        "tmf_naive_rank": instance.rank_of(tmf_n.winner),
        "tmf_naive_comparisons": tmf_n.comparisons,
        "tmf_expert_rank": instance.rank_of(tmf_e.winner),
        "tmf_expert_comparisons": tmf_e.comparisons,
    }


#: The list-valued SweepPoint fields fed by one :func:`_sweep_trial` run.
_TRIAL_FIELDS = (
    "alg1_rank",
    "alg1_naive",
    "alg1_expert",
    "tmf_naive_rank",
    "tmf_naive_comparisons",
    "tmf_expert_rank",
    "tmf_expert_comparisons",
)


def _sweep_worst_case(
    rng: np.random.Generator, *, n: int, config: SweepConfig
) -> dict[str, Any]:
    """One independent per-n run measuring both adversarial worst cases."""
    return {
        "tmf_naive_wc": _measure_adversarial_two_maxfind(
            n, config.u_n, config.delta_n, rng
        ),
        "tmf_expert_wc": _measure_adversarial_two_maxfind(
            n, config.u_e, config.delta_e, rng
        ),
    }


def run_sweep(
    config: SweepConfig, rng: np.random.Generator, jobs: int = 1
) -> SweepData:
    """Run the full Section 5.1 sweep.

    Every trial creates a fresh planted instance and fresh oracles, so
    trials are independent; the adversarial worst case is measured once
    per ``n`` (it is deterministic up to the instance draw).

    Each (n, trial) run — and each per-n worst-case measurement — gets
    its own :class:`~numpy.random.SeedSequence` child spawned from
    ``rng``, and ``jobs`` controls how many processes execute the grid
    (``0`` for all cores).  The result is bit-identical for every value
    of ``jobs``; runs that raise are isolated into ``data.failures``.
    """
    grid: list[tuple] = []
    for n in config.ns:
        for trial in range(config.trials):
            grid.append((_sweep_trial, {"n": n, "config": config},
                         f"sweep[n={n},trial={trial}]"))
        if config.measure_worst_case:
            grid.append((_sweep_worst_case, {"n": n, "config": config},
                         f"sweep-wc[n={n}]"))
    seeds = spawn_run_seeds(rng, len(grid))
    specs = [
        RunSpec(index=i, fn=fn, seed=seed, params=params, label=label)
        for i, ((fn, params, label), seed) in enumerate(zip(grid, seeds))
    ]
    results = execute_runs(specs, jobs=jobs)

    data = SweepData(config=config)
    cursor = iter(results)
    for n in config.ns:
        point = SweepPoint(n=n)
        for _ in range(config.trials):
            run = next(cursor)
            if not run.ok:
                data.failures.append(run)
                continue
            for name in _TRIAL_FIELDS:
                getattr(point, name).append(run.value[name])
        point.alg1_naive_wc = filter_comparisons_upper_bound(n, config.u_n)
        point.alg1_expert_wc = two_maxfind_comparisons_upper_bound(
            survivor_upper_bound(config.u_n)
        )
        if config.measure_worst_case:
            run = next(cursor)
            if run.ok:
                point.tmf_naive_wc = run.value["tmf_naive_wc"]
                point.tmf_expert_wc = run.value["tmf_expert_wc"]
            else:
                data.failures.append(run)
        data.points.append(point)
    return data
