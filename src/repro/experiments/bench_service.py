"""The ``bench-service`` harness: the HTTP serving layer under load.

Boots a real :class:`~repro.service_http.server.ServiceServer` on a
loopback socket and drives it with the stdlib
:class:`~repro.service_http.client.ServiceClient` — every job is a
genuine HTTP exchange (submit, then a long-poll for the result), not
an in-process shortcut.  Recorded per run:

* **latency** — submit→settled wall time per job, p50 / p99 / mean;
* **throughput** — settled jobs per second of driving wall time;
* **status mix** — every HTTP status seen, and the wire code of every
  error envelope (an honest run is all 202/200);
* **parity** — a sample of jobs is re-executed in-process through the
  ``repro.api`` surface with the same seed split, and the HTTP result
  payload must be bit-identical (dict-equal after the shared
  ``to_dict()``) to the in-process one.

The bench **fails** (the CLI exits nonzero) on any 5xx response or any
parity mismatch — both are correctness regressions, not perf numbers.
Artifact: ``results/BENCH_service.json`` (schema
``repro.bench_service/v1``) plus one ``BENCH_history.jsonl`` line.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Any

import numpy as np

from ..platform.platform import CrowdPlatform
from ..service_http import JobSpec, ServiceClient, ServiceConfig, ServiceServer
from ..service_http.runner import default_pool_factory
from .artifacts import write_json_atomic
from .base import TableResult

__all__ = [
    "SERVICE_BENCH_SCHEMA",
    "run_service_bench",
    "service_bench_table",
    "write_service_bench_json",
]

SERVICE_BENCH_SCHEMA = "repro.bench_service/v1"

#: Small instances keep one job cheap so the bench exercises the
#: serving layer (sockets, generations, fan-in), not phase-1 math.
_BENCH_N = 24
_BENCH_U_N = 2


def _bench_specs(seed: int, n_jobs: int) -> list[JobSpec]:
    """Deterministic job catalog: distinct values, per-job seeds."""
    rng = np.random.default_rng(seed)
    specs = []
    for index in range(n_jobs):
        values = tuple(float(v) for v in rng.permutation(_BENCH_N))
        specs.append(
            JobSpec(values=values, u_n=_BENCH_U_N, seed=seed + index)
        )
    return specs


def _run_in_process(spec: JobSpec) -> dict[str, Any]:
    """The same job through the in-process surface (the parity twin).

    Replicates the scheduler's explicit-seed split exactly: the wire
    seed becomes a ``SeedSequence`` whose two children are the
    algorithm and platform streams, on fresh default pools.
    """
    job_seed, platform_seed = np.random.SeedSequence(spec.seed).spawn(2)
    platform = CrowdPlatform(
        default_pool_factory(), rng=np.random.default_rng(platform_seed)
    )
    result = spec.build_job().execute(platform, np.random.default_rng(job_seed))
    return result.to_dict()


async def _drive(
    server: ServiceServer,
    specs: list[JobSpec],
    concurrency: int,
    token: str,
) -> dict[str, Any]:
    client = ServiceClient("127.0.0.1", server.port, token)
    semaphore = asyncio.Semaphore(concurrency)
    latencies: list[float] = []
    status_mix: dict[str, int] = {}
    error_codes: dict[str, int] = {}
    results: list[dict[str, Any] | None] = [None] * len(specs)

    def _tally(status: int, payload: dict[str, Any]) -> None:
        key = str(status)
        status_mix[key] = status_mix.get(key, 0) + 1
        if status >= 400:
            code = str((payload.get("error") or {}).get("code", "unknown"))
            error_codes[code] = error_codes.get(code, 0) + 1

    async def _one(index: int, spec: JobSpec) -> None:
        async with semaphore:
            t0 = time.perf_counter()
            response = await client.request(
                "POST", "/v1/jobs", payload=spec.to_dict()
            )
            _tally(response.status, response.payload)
            if response.status >= 400:
                return
            job_id = str(response.payload["job_id"])
            while True:
                poll = await client.job_result(job_id, wait=30.0)
                _tally(poll.status, poll.payload)
                if poll.status == 202:
                    continue  # long-poll timed out before settle; re-arm
                if poll.status == 200:
                    latencies.append(time.perf_counter() - t0)
                    results[index] = poll.payload.get("result")
                return

    wall0 = time.perf_counter()
    await asyncio.gather(*(_one(i, spec) for i, spec in enumerate(specs)))
    wall_s = time.perf_counter() - wall0
    return {
        "wall_s": wall_s,
        "latencies": latencies,
        "status_mix": status_mix,
        "error_codes": error_codes,
        "results": results,
    }


def run_service_bench(
    seed: int = 2015,
    n_jobs: int = 1000,
    concurrency: int = 32,
    parity_checks: int = 8,
    generation_max_jobs: int = 128,
) -> dict[str, Any]:
    """Run the load bench; returns the ``BENCH_service.json`` payload."""
    if n_jobs < 1:
        raise ValueError("n_jobs must be at least 1")
    specs = _bench_specs(seed, n_jobs)
    token = "bench-token"

    async def _session() -> dict[str, Any]:
        config = ServiceConfig(
            port=0,
            tokens={token: "bench"},
            max_queued=n_jobs + concurrency,
            generation_max_jobs=generation_max_jobs,
        )
        server = ServiceServer(config)
        await server.start()
        try:
            return await _drive(server, specs, concurrency, token)
        finally:
            await server.aclose()

    driven = asyncio.run(_session())

    latencies = np.asarray(driven["latencies"], dtype=float)
    settled_ok = int(latencies.size)
    server_errors = sum(
        count
        for status, count in driven["status_mix"].items()
        if status.startswith("5")
    )
    parity = []
    for index in range(min(parity_checks, n_jobs)):
        http_result = driven["results"][index]
        parity.append(
            http_result is not None and _run_in_process(specs[index]) == http_result
        )
    payload: dict[str, Any] = {
        "schema": SERVICE_BENCH_SCHEMA,
        "seed": seed,
        "workload": {
            "n_jobs": n_jobs,
            "concurrency": concurrency,
            "n": _BENCH_N,
            "u_n": _BENCH_U_N,
            "generation_max_jobs": generation_max_jobs,
        },
        "wall_s": round(driven["wall_s"], 6),
        "jobs_per_sec": (
            round(settled_ok / driven["wall_s"], 3) if driven["wall_s"] > 0 else None
        ),
        "settled_ok": settled_ok,
        "latency_s": {
            "p50": round(float(np.percentile(latencies, 50)), 6) if settled_ok else None,
            "p99": round(float(np.percentile(latencies, 99)), 6) if settled_ok else None,
            "mean": round(float(latencies.mean()), 6) if settled_ok else None,
            "max": round(float(latencies.max()), 6) if settled_ok else None,
        },
        "status_mix": dict(sorted(driven["status_mix"].items())),
        "error_codes": dict(sorted(driven["error_codes"].items())),
        "server_errors": int(server_errors),
        "parity": {
            "checked": len(parity),
            "identical": bool(all(parity)) if parity else False,
        },
        "ok": bool(
            server_errors == 0
            and settled_ok == n_jobs
            and parity
            and all(parity)
        ),
        "generated_unix": round(time.time(), 3),  # repro-lint: disable=DET002 -- provenance
    }
    return payload


def service_bench_table(payload: dict[str, Any]) -> TableResult:
    """Render a BENCH_service payload as the table the CLI prints."""
    workload = payload["workload"]
    table = TableResult(
        table_id="bench-service",
        title=(
            f"HTTP service: {workload['n_jobs']} jobs x{workload['concurrency']} "
            f"concurrent (n={workload['n']})"
        ),
        headers=["metric", "value"],
    )
    latency = payload["latency_s"]
    table.add_row(["settled ok", payload["settled_ok"]])
    table.add_row(["wall (s)", payload["wall_s"]])
    table.add_row(["jobs/s", payload["jobs_per_sec"]])
    table.add_row(["latency p50 (s)", latency["p50"]])
    table.add_row(["latency p99 (s)", latency["p99"]])
    table.add_row(["status mix", str(payload["status_mix"])])
    table.add_row(["5xx responses", payload["server_errors"]])
    table.add_row(
        [
            "parity vs in-process",
            f"{payload['parity']['checked']} checked, "
            + ("identical" if payload["parity"]["identical"] else "MISMATCH"),
        ]
    )
    return table


def write_service_bench_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Persist the artifact atomically (safe under concurrent shards)."""
    return write_json_atomic(path, payload)
