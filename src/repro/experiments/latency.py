"""Latency / time-complexity experiment (logical and physical steps).

The paper adopts the step model of Venetis et al.: "the algorithms we
consider are organized in logical time steps" and "they consider the
number of logical time steps a reasonable measure of the time
complexity" (Section 3, Remark).  This experiment measures both
notions for the two-phase algorithm on the platform simulator:

* *logical steps* — batches submitted (filter rounds contribute one
  batch per group-tournament round plus the final phase's rounds);
* *physical steps* — simulator ticks until every batch is answered,
  which depends on pool size and availability.

Expected shapes: the filter's round count — hence the logical-step
count — grows logarithmically in ``n`` (each round at least halves the
population, Lemma 3), while physical steps scale with the batch volume
divided by the effective workforce.
"""

from __future__ import annotations

import numpy as np

from ..core.filter_phase import filter_candidates
from ..core.generators import planted_instance
from ..core.oracle import ComparisonOracle
from ..core.two_maxfind import two_maxfind
from ..platform.oracle_adapter import PlatformWorkerModel
from ..platform.platform import CrowdPlatform
from ..platform.workforce import WorkerPool
from ..workers.threshold import ThresholdWorkerModel
from .base import TableResult

__all__ = ["run_latency_experiment"]


def run_latency_experiment(
    rng: np.random.Generator,
    ns: tuple[int, ...] = (200, 400, 800, 1600),
    u_n: int = 6,
    pool_size: int = 40,
    availability: float = 0.7,
    trials: int = 2,
) -> TableResult:
    """Measure logical/physical steps of the pipeline on the platform."""
    table = TableResult(
        table_id="latency",
        title=(
            f"time complexity on the platform (pool={pool_size}, "
            f"availability={availability:g}, u_n={u_n})"
        ),
        headers=[
            "n",
            "filter rounds (avg)",
            "logical steps (avg)",
            "physical steps (avg)",
            "judgments (avg)",
        ],
    )
    model = ThresholdWorkerModel(delta=1.0)
    for n in ns:
        rounds: list[int] = []
        logical: list[int] = []
        physical: list[int] = []
        judgments: list[int] = []
        for _ in range(trials):
            instance = planted_instance(
                n=n, u_n=u_n, u_e=u_n, delta_n=1.0, delta_e=1.0, rng=rng
            )
            pool = WorkerPool.homogeneous(
                "naive", model, size=pool_size, availability=availability
            )
            platform = CrowdPlatform({"naive": pool}, rng)
            oracle = ComparisonOracle(
                instance, PlatformWorkerModel(platform, "naive"), rng
            )
            filter_result = filter_candidates(oracle, u_n=u_n)
            two_maxfind(oracle, filter_result.survivors)
            rounds.append(filter_result.n_rounds)
            logical.append(platform.logical_steps)
            physical.append(platform.physical_steps_total)
            judgments.append(platform.ledger.operations("naive"))
        table.add_row(
            [
                n,
                float(np.mean(rounds)),
                float(np.mean(logical)),
                float(np.mean(physical)),
                float(np.mean(judgments)),
            ]
        )
    table.notes.append(
        "filter rounds grow ~log(n) (Lemma 3's halving); physical steps "
        "scale with judgment volume over the effective workforce"
    )
    return table
