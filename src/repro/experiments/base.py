"""Result containers shared by every experiment.

Each experiment returns a :class:`FigureResult` (x values plus named
series, mirroring one figure panel of the paper) or a
:class:`TableResult` (headers plus rows).  Both render to aligned text
and export to CSV, so the benchmark harness can "print the same
rows/series the paper reports".

:func:`experiment_tracer` is the observability hook: it activates a
JSONL-writing :class:`~repro.telemetry.Tracer` for the duration of an
experiment, persisting the trace next to the experiment's CSVs, with
no plumbing changes in the experiment code itself (all instrumented
call sites fall back to the ambient tracer).  Sweeps executed through
:mod:`repro.parallel` merge their per-worker trace shards back into
this same tracer, so ``<identifier>.trace.jsonl`` stays the single
source of truth whether the sweep ran on one process or many; use
:func:`~repro.parallel.failure_notes` (re-exported here) to surface
isolated run failures on a result's ``notes``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..analysis.reporting import format_rows, format_series_table, write_csv
from ..parallel import failure_notes
from ..telemetry import NULL_TRACER, JsonlSink, Tracer, use_tracer

__all__ = ["FigureResult", "TableResult", "experiment_tracer", "failure_notes"]


@contextmanager
def experiment_tracer(out: Path | str | None, identifier: str) -> Iterator[Tracer]:
    """Trace one experiment, writing ``<out>/<identifier>.trace.jsonl``.

    The yielded tracer is installed as the ambient tracer for the
    duration of the block, so every oracle, filter round and phase span
    inside the experiment is recorded without threading a ``tracer``
    argument through experiment code.  With ``out=None`` the no-op
    tracer is yielded and nothing is written — experiments can wrap
    their body unconditionally.
    """
    if out is None:
        yield NULL_TRACER
        return
    path = Path(out) / f"{identifier}.trace.jsonl"
    tracer = Tracer(sink=JsonlSink(path))
    try:
        with use_tracer(tracer):
            yield tracer
    finally:
        tracer.close()


@dataclass
class FigureResult:
    """One figure panel: x values plus one y-series per curve."""

    figure_id: str
    title: str
    x_label: str
    x_values: list[float | int]
    series: dict[str, list] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_series(self, name: str, values: list[float | int]) -> None:
        """Attach one named curve (must align with ``x_values``)."""
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r}: {len(values)} points for "
                f"{len(self.x_values)} x values"
            )
        self.series[name] = list(values)

    def to_text(self) -> str:
        """Aligned text rendering of the panel."""
        body = format_series_table(
            self.x_label,
            self.x_values,
            self.series,
            title=f"[{self.figure_id}] {self.title}",
        )
        if self.notes:
            body += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return body

    def to_csv(self, path: str | Path) -> Path:
        """CSV export: one row per x value, one column per series."""
        headers = [self.x_label, *self.series.keys()]
        rows = [
            [x, *(ys[k] for ys in self.series.values())]
            for k, x in enumerate(self.x_values)
        ]
        return write_csv(path, headers, rows)


@dataclass
class TableResult:
    """One table: headers plus data rows."""

    table_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, row: list[object]) -> None:
        """Append one row (must align with ``headers``)."""
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(self.headers)} headers"
            )
        self.rows.append(list(row))

    def to_text(self) -> str:
        """Aligned text rendering of the table."""
        body = format_rows(
            self.headers, self.rows, title=f"[{self.table_id}] {self.title}"
        )
        if self.notes:
            body += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return body

    def to_csv(self, path: str | Path) -> Path:
        """CSV export of the table."""
        return write_csv(path, self.headers, self.rows)
