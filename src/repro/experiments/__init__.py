"""Experiment harness: one module per paper table/figure (see DESIGN.md)."""

from .ablation import (
    run_group_multiplier_ablation,
    run_loss_counter_ablation,
    run_memoization_ablation,
    run_phase2_ablation,
)
from .accuracy_curves import (
    CARS_BUCKETS,
    DOTS_BUCKETS,
    run_accuracy_curves,
    run_figure2_cars,
    run_figure2_dots,
)
from .accuracy_vs_n import figure3_from_sweep, run_figure3
from .base import FigureResult, TableResult, experiment_tracer, failure_notes
from .baselines import run_baseline_shootout
from .bench import (
    bench_identical,
    bench_table,
    oracle_bench_table,
    run_bench_comparison,
    run_oracle_bench,
    write_bench_json,
)
from .bench_scheduler import (
    SchedulerWorkload,
    run_scheduler_bench,
    scheduler_bench_table,
    write_scheduler_bench_json,
)
from .bounds_check import run_bounds_check
from .budget_planning import run_budget_planning
from .comparisons_vs_n import figure4_from_sweep
from .cost_vs_n import PAPER_EXPERT_COSTS, figure5_from_sweep, figure9_from_sweep
from .crowdflower import (
    CrowdFlowerRun,
    run_crowdflower_experiment,
    run_repeated_two_maxfind,
    run_search_evaluation,
    run_table1_dots,
    run_table2_cars,
)
from .estimation_sweep import (
    PAPER_ESTIMATION_FACTORS,
    EstimationConfig,
    EstimationData,
    figure6_from_estimation,
    figure7_from_estimation,
    figure10_from_estimation,
    run_estimation_sweep,
    survival_table,
)
from .expert_discovery import run_expert_discovery
from .extensions import run_cascade_experiment, run_expert_fraction_experiment
from .io import load_result, save_result
from .latency import run_latency_experiment
from .report import compose_report, write_report
from .robustness import (
    run_epsilon_robustness,
    run_fatigue_experiment,
    run_fault_sweep,
)
from .sorting_quality import run_sorting_quality
from .sweep import PAPER_NS, SweepConfig, SweepData, run_sweep

__all__ = [
    "CARS_BUCKETS",
    "CrowdFlowerRun",
    "DOTS_BUCKETS",
    "EstimationConfig",
    "EstimationData",
    "FigureResult",
    "PAPER_ESTIMATION_FACTORS",
    "PAPER_EXPERT_COSTS",
    "PAPER_NS",
    "SweepConfig",
    "SweepData",
    "TableResult",
    "experiment_tracer",
    "bench_identical",
    "bench_table",
    "oracle_bench_table",
    "run_oracle_bench",
    "compose_report",
    "failure_notes",
    "figure10_from_estimation",
    "figure3_from_sweep",
    "figure4_from_sweep",
    "figure5_from_sweep",
    "figure6_from_estimation",
    "figure7_from_estimation",
    "figure9_from_sweep",
    "load_result",
    "run_accuracy_curves",
    "run_baseline_shootout",
    "run_bench_comparison",
    "SchedulerWorkload",
    "run_scheduler_bench",
    "scheduler_bench_table",
    "write_scheduler_bench_json",
    "run_bounds_check",
    "run_budget_planning",
    "run_cascade_experiment",
    "run_crowdflower_experiment",
    "run_epsilon_robustness",
    "run_estimation_sweep",
    "run_expert_discovery",
    "run_expert_fraction_experiment",
    "run_fatigue_experiment",
    "run_fault_sweep",
    "run_figure2_cars",
    "run_figure2_dots",
    "run_figure3",
    "run_group_multiplier_ablation",
    "run_latency_experiment",
    "run_loss_counter_ablation",
    "run_memoization_ablation",
    "run_phase2_ablation",
    "run_repeated_two_maxfind",
    "run_search_evaluation",
    "run_sorting_quality",
    "run_sweep",
    "run_table1_dots",
    "run_table2_cars",
    "save_result",
    "survival_table",
    "write_bench_json",
    "write_report",
]
