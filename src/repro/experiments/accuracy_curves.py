"""Figure 2: worker accuracy vs. number of aggregated workers (§3.1).

Reproduces both panels: for every comparison pair the harness simulates
21 independent worker votes and reports, per relative-difference bucket
and per odd vote count k = 1, 3, ..., 21, the fraction of pairs whose
k-vote majority picks the truly better element.

Expected shapes (the paper's findings):

* DOTS (2a): every bucket climbs towards accuracy 1 as workers are
  added — the wisdom-of-crowds regime;
* CARS (2b): buckets below ~20 % relative difference plateau at about
  0.6-0.7 no matter how many workers vote — the threshold regime.
"""

from __future__ import annotations

import math

import numpy as np

from ..datasets.cars import CATALOG_SEED, cars_catalog
from ..datasets.dots import DOTS_FULL_RANGE, dots_counts
from ..workers.base import WorkerModel
from ..workers.calibrated import CalibratedCarsWorkerModel, make_dots_worker
from .base import FigureResult

__all__ = [
    "DOTS_BUCKETS",
    "CARS_BUCKETS",
    "run_figure2_dots",
    "run_figure2_cars",
    "run_accuracy_curves",
]

#: Relative-difference buckets of Figure 2(a).
DOTS_BUCKETS: tuple[tuple[float, float], ...] = (
    (0.0, 0.1),
    (0.1, 0.2),
    (0.2, 0.3),
    (0.3, math.inf),
)
#: Relative-difference buckets of Figure 2(b).
CARS_BUCKETS: tuple[tuple[float, float], ...] = (
    (0.0, 0.1),
    (0.1, 0.2),
    (0.2, 0.5),
    (0.5, math.inf),
)


def _bucket_label(bucket: tuple[float, float]) -> str:
    low, high = bucket
    high_text = "+inf" if math.isinf(high) else f"{high:g}"
    open_low = "[" if low == 0.0 else "("
    return f"{open_low}{low:g},{high_text}]"


def _relative_difference(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b))


def _sample_bucketed_pairs(
    values: np.ndarray,
    buckets: tuple[tuple[float, float], ...],
    n_pairs: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Sample ~n_pairs pairs spread across the difference buckets.

    The paper "selected pairs covering the overall range of values and
    differences"; rejection sampling per bucket achieves the same
    coverage.  Returns pair index arrays plus the bucket id per pair.
    """
    per_bucket = max(1, n_pairs // len(buckets))
    ii: list[int] = []
    jj: list[int] = []
    bucket_ids: list[int] = []
    n = len(values)
    for bucket_id, (low, high) in enumerate(buckets):
        found = 0
        attempts = 0
        budget = 2000 * per_bucket
        while found < per_bucket and attempts < budget:
            attempts += 1
            a, b = rng.choice(n, size=2, replace=False)
            if values[a] == values[b]:
                continue
            diff = _relative_difference(float(values[a]), float(values[b]))
            if low < diff <= high or (low == 0.0 and diff <= high):
                ii.append(int(a))
                jj.append(int(b))
                bucket_ids.append(bucket_id)
                found += 1
    if not ii:
        raise RuntimeError("could not sample any usable pair")
    return np.asarray(ii, dtype=np.intp), np.asarray(jj, dtype=np.intp), bucket_ids


def _accuracy_curves(
    values: np.ndarray,
    model: WorkerModel,
    buckets: tuple[tuple[float, float], ...],
    n_pairs: int,
    max_workers: int,
    rng: np.random.Generator,
) -> tuple[list[int], dict[str, list[float]]]:
    """Simulate votes and compute majority accuracy per bucket/k."""
    if max_workers < 1 or max_workers % 2 == 0:
        raise ValueError("max_workers must be a positive odd number")
    ii, jj, bucket_ids = _sample_bucketed_pairs(values, buckets, n_pairs, rng)
    truth_first = values[ii] > values[jj]

    votes = np.zeros((max_workers, len(ii)), dtype=bool)
    for v in range(max_workers):
        votes[v] = model.decide(values[ii], values[jj], rng, indices_i=ii, indices_j=jj)

    ks = list(range(1, max_workers + 1, 2))
    cumulative = np.cumsum(votes, axis=0)  # votes for "first" among first k
    series: dict[str, list[float]] = {}
    bucket_arr = np.asarray(bucket_ids)
    for bucket_id, bucket in enumerate(buckets):
        members = bucket_arr == bucket_id
        count = int(np.count_nonzero(members))
        if count == 0:
            continue
        label = f"{_bucket_label(bucket)},{count}"
        ys: list[float] = []
        for k in ks:
            first_wins = cumulative[k - 1] * 2 > k
            correct = first_wins == truth_first
            ys.append(float(np.mean(correct[members])))
        series[label] = ys
    return ks, series


def run_figure2_dots(
    rng: np.random.Generator,
    n_pairs: int = 105,
    max_workers: int = 21,
    sigma: float = 0.15,
) -> FigureResult:
    """Reproduce Figure 2(a): DOTS accuracy vs. number of workers."""
    start, stop, step = DOTS_FULL_RANGE
    counts = dots_counts((stop - start) // step + 1, start, step).astype(np.float64)
    model = make_dots_worker(sigma=sigma)
    ks, series = _accuracy_curves(counts, model, DOTS_BUCKETS, n_pairs, max_workers, rng)
    figure = FigureResult(
        figure_id="fig2a",
        title="DOTS: majority-vote accuracy by relative-difference bucket",
        x_label="workers",
        x_values=ks,
    )
    for label, ys in series.items():
        figure.add_series(label, ys)
    figure.notes.append(
        "every bucket should climb toward 1.0 (wisdom-of-crowds regime)"
    )
    return figure


def run_figure2_cars(
    rng: np.random.Generator,
    n_pairs: int = 154,
    max_workers: int = 21,
    model: CalibratedCarsWorkerModel | None = None,
) -> FigureResult:
    """Reproduce Figure 2(b): CARS accuracy vs. number of workers."""
    catalog = cars_catalog(rng=np.random.default_rng(CATALOG_SEED))
    prices = np.asarray([car.price for car in catalog], dtype=np.float64)
    model = model if model is not None else CalibratedCarsWorkerModel(seed=11)
    ks, series = _accuracy_curves(prices, model, CARS_BUCKETS, n_pairs, max_workers, rng)
    figure = FigureResult(
        figure_id="fig2b",
        title="CARS: majority-vote accuracy by relative-difference bucket",
        x_label="workers",
        x_values=ks,
    )
    for label, ys in series.items():
        figure.add_series(label, ys)
    figure.notes.append(
        "buckets at or below 20% relative difference plateau near 0.6-0.7 "
        "(threshold regime: experts cannot be simulated by more workers)"
    )
    return figure


def run_accuracy_curves(
    dataset: str,
    rng: np.random.Generator,
    n_pairs: int | None = None,
    max_workers: int = 21,
) -> FigureResult:
    """Dispatch to the DOTS or CARS panel by name."""
    if dataset == "dots":
        return run_figure2_dots(rng, n_pairs=n_pairs or 105, max_workers=max_workers)
    if dataset == "cars":
        return run_figure2_cars(rng, n_pairs=n_pairs or 154, max_workers=max_workers)
    raise ValueError(f"unknown dataset {dataset!r}; expected 'dots' or 'cars'")
