"""Approximate-sorting quality experiment (substrate validation).

Sorting with imprecise comparators is the substrate family the paper
builds on (Ajtai et al.; the fault-tolerant sorting literature of
Section 2).  This experiment measures, for the two sorters of
:mod:`repro.core.sorting` under ``T(delta, 0)``:

* the maximum and mean *dislocation* of the output order, and
* the comparison counts,

as the threshold ``delta`` grows.  Expected shape: Borda's dislocation
stays bounded by the ``delta``-neighbourhood size while paying
``C(m, 2)`` comparisons; quicksort pays ``O(m log m)`` but its
dislocation grows faster with ``delta`` (pivot errors displace whole
subtrees).
"""

from __future__ import annotations

import numpy as np

from ..core.oracle import ComparisonOracle
from ..core.sorting import borda_sort, dislocation, quick_sort
from ..workers.threshold import ThresholdWorkerModel
from .base import TableResult

__all__ = ["run_sorting_quality"]


def run_sorting_quality(
    rng: np.random.Generator,
    m: int = 100,
    deltas: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0),
    trials: int = 3,
    value_range: float = 100.0,
) -> TableResult:
    """Dislocation and cost of Borda sort vs quicksort across deltas."""
    table = TableResult(
        table_id="sorting-quality",
        title=f"approximate sorting under T(delta, 0) (m={m}, range={value_range:g})",
        headers=[
            "delta",
            "algorithm",
            "max dislocation (avg)",
            "mean dislocation (avg)",
            "comparisons (avg)",
        ],
    )
    for delta in deltas:
        stats = {"borda": [], "quicksort": []}
        for _ in range(trials):
            values = rng.uniform(0.0, value_range, size=m)
            model = ThresholdWorkerModel(delta=delta)
            oracle = ComparisonOracle(values, model, rng)
            order = borda_sort(oracle)
            d = dislocation(values, order)
            stats["borda"].append((d.max(), d.mean(), oracle.comparisons))

            oracle2 = ComparisonOracle(values, model, rng)
            order2 = quick_sort(oracle2, rng)
            d2 = dislocation(values, order2)
            stats["quicksort"].append((d2.max(), d2.mean(), oracle2.comparisons))
        for name, samples in stats.items():
            arr = np.asarray(samples, dtype=np.float64)
            table.add_row(
                [
                    delta,
                    name,
                    float(arr[:, 0].mean()),
                    float(arr[:, 1].mean()),
                    float(arr[:, 2].mean()),
                ]
            )
    table.notes.append(
        "delta = 0 must sort exactly; Borda's dislocation is bounded by "
        "the delta-neighbourhood size, quicksort trades accuracy for "
        "O(m log m) comparisons"
    )
    return table
