"""The CrowdFlower experiments of Section 5.3 (Tables 1 and 2, plus the
in-text 2-MaxFind repetitions and the search-results evaluation).

These experiments run the *full platform simulator* — worker pools with
spammers, gold-question bans, per-judgment billing — in place of the
real CrowdFlower deployment:

* **DOTS** (Table 1): 50 images, task "select the image with the
  minimum number of random dots", ``u_n = 5``; phase 2 uses *simulated
  experts*, each expert query answered by the majority of 7 naive
  judgments.  Expected: ~9 survivors, near-perfect last-round ranking.
* **CARS** (Table 2): 50 cars, task "find the most expensive car".
  Expected: the top car reaches the last round but the simulated
  experts fail to identify it — the accuracy barrier of Figure 2(b).
* **2-MaxFind-naive repetitions** (in-text): 14 naive-only runs per
  dataset; expected ~13/14 successes on DOTS and 0/14 on CARS.
* **Search-results evaluation** (in-text): two queries, 50 results
  each, ``u_n(50) in {6, 8, 10}``; expected: the best result is always
  promoted to phase 2 (where a real expert identifies it), while
  naive-only 2-MaxFind finds it only in roughly 1 of 4 runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.filter_phase import filter_candidates
from ..core.instance import ProblemInstance
from ..core.oracle import ComparisonOracle
from ..core.tournament import play_all_play_all
from ..core.two_maxfind import two_maxfind
from ..datasets.cars import CATALOG_SEED, cars_instance
from ..datasets.dots import DOTS_GOLDEN_RANGE, dots_counts, dots_instance
from ..datasets.search import SEARCH_QUERIES, search_instance
from ..platform.accounting import CostLedger
from ..platform.gold import GoldPolicy
from ..platform.oracle_adapter import PlatformWorkerModel
from ..platform.platform import CrowdPlatform
from ..platform.workforce import WorkerPool
from ..workers.base import WorkerModel
from ..workers.beliefs import CrowdBeliefTable
from ..workers.calibrated import CalibratedCarsWorkerModel, make_dots_worker
from ..workers.spammer import RandomSpammerModel
from ..workers.threshold import CrowdBeliefBehavior, ThresholdWorkerModel
from .base import TableResult

__all__ = [
    "CrowdFlowerRun",
    "run_crowdflower_experiment",
    "run_table1_dots",
    "run_table2_cars",
    "run_repeated_two_maxfind",
    "run_search_evaluation",
]

#: Simulated expert = majority of this many naive judgments (paper: 7).
SIMULATED_EXPERT_VOTES = 7


@dataclass
class CrowdFlowerRun:
    """One end-to-end platform run of the two-phase pipeline."""

    survivors: np.ndarray
    last_round_order: list[int]
    winner: int
    max_survived: bool
    naive_judgments: int
    total_cost: float
    workers_banned: int

    def position_of(self, element: int) -> int | None:
        """1-based last-round position of ``element`` (None if absent)."""
        try:
            return self.last_round_order.index(element) + 1
        except ValueError:
            return None


def _build_platform(
    naive_model: WorkerModel,
    gold_values: np.ndarray,
    rng: np.random.Generator,
    n_honest: int = 25,
    n_spammers: int = 2,
    availability: float = 0.7,
    cost_per_judgment: float = 1.0,
    gold_min_relative_difference: float = 0.25,
) -> CrowdPlatform:
    """A CrowdFlower-like platform: honest pool + spammers + gold."""
    models: list[WorkerModel] = [naive_model] * n_honest
    models += [RandomSpammerModel() for _ in range(n_spammers)]
    pool = WorkerPool.from_models(
        "naive",
        models,
        cost_per_judgment=cost_per_judgment,
        availability=availability,
    )
    gold = GoldPolicy.from_values(
        gold_values,
        rng,
        n_pairs=30,
        min_relative_difference=gold_min_relative_difference,
    )
    return CrowdPlatform({"naive": pool}, rng, ledger=CostLedger(), gold=gold)


def run_crowdflower_experiment(
    instance: ProblemInstance,
    naive_model: WorkerModel,
    gold_values: np.ndarray,
    rng: np.random.Generator,
    u_n: int = 5,
    expert_votes: int = SIMULATED_EXPERT_VOTES,
    phase1_votes: int = 3,
) -> CrowdFlowerRun:
    """One full Section 5.3 pipeline run on the platform simulator.

    Phase 1 filters with the majority of ``phase1_votes`` naive
    judgments per comparison (real CrowdFlower deployments collect a
    few judgments per task; a single noisy judgment would make the
    filter needlessly fragile); phase 2 ranks the survivors with
    simulated experts (majority of ``expert_votes`` naive judgments per
    comparison) in an all-play-all tournament, which is what the
    paper's "ranking of the last round" reports.
    """
    platform = _build_platform(naive_model, gold_values, rng)
    phase1_model = PlatformWorkerModel(
        platform, "naive", judgments_per_task=phase1_votes
    )
    naive_oracle = ComparisonOracle(instance, phase1_model, rng, label="naive")
    filter_result = filter_candidates(naive_oracle, u_n=u_n)
    survivors = filter_result.survivors

    expert_model = PlatformWorkerModel(
        platform, "naive", judgments_per_task=expert_votes, is_expert=True
    )
    expert_oracle = ComparisonOracle(instance, expert_model, rng, label="sim-expert")
    final = play_all_play_all(expert_oracle, survivors)
    order = [
        int(element)
        for element in final.elements[np.argsort(-final.wins, kind="stable")]
    ]

    pool = platform.pools["naive"]
    return CrowdFlowerRun(
        survivors=survivors,
        last_round_order=order,
        winner=order[0],
        max_survived=bool(instance.max_index in survivors),
        naive_judgments=platform.ledger.operations("naive"),
        total_cost=platform.ledger.total_cost,
        workers_banned=sum(1 for w in pool.workers if w.banned),
    )


def run_table1_dots(
    rng: np.random.Generator,
    n_experiments: int = 2,
    n_items: int = 50,
    u_n: int = 5,
    top_k: int = 9,
) -> TableResult:
    """Reproduce Table 1: last-round ranking of the two DOTS experiments."""
    instance = dots_instance(n_items)
    golden_start, golden_stop, golden_step = DOTS_GOLDEN_RANGE
    golden_values = -dots_counts(
        (golden_stop - golden_start) // golden_step + 1, golden_start, golden_step
    ).astype(np.float64)
    model = make_dots_worker()

    runs = [
        run_crowdflower_experiment(instance, model, golden_values, rng, u_n=u_n)
        for _ in range(n_experiments)
    ]

    table = TableResult(
        table_id="table1",
        title="DOTS: ranking of the last round (task: fewest dots)",
        headers=["# dots", *(f"Exp. {k + 1}" for k in range(n_experiments))],
    )
    for element in instance.top_indices(top_k):
        dots = instance.payload(int(element)).dot_count
        row: list[object] = [dots]
        for run in runs:
            position = run.position_of(int(element))
            row.append(position if position is not None else "-")
        table.add_row(row)
    for k, run in enumerate(runs):
        table.notes.append(
            f"Exp. {k + 1}: {len(run.survivors)} survivors, minimum "
            f"{'found' if run.winner == instance.max_index else 'MISSED'}, "
            f"{run.naive_judgments} naive judgments, cost {run.total_cost:.0f}, "
            f"{run.workers_banned} workers banned"
        )
    table.notes.append(
        "paper: both experiments promoted exactly the true top-9 and the "
        "simulated experts ranked them (almost) perfectly"
    )
    return table


def run_table2_cars(
    rng: np.random.Generator,
    n_experiments: int = 2,
    n_sample: int = 50,
    u_n: int = 5,
    top_k: int = 19,
) -> TableResult:
    """Reproduce Table 2: last-round ranking of the two CARS experiments.

    The paper downsampled 50 of the 110 cars; we do the same but pin
    the top price cluster (the five most expensive cars, all within
    ~10 % of each other) into the sample: the paper's sample contained
    it — Table 2 shows those cars competing in the last round — and the
    experiment's point, that simulated experts cannot separate the
    cluster, needs it present.
    """
    catalog = cars_instance(rng=np.random.default_rng(CATALOG_SEED))
    pinned = [int(e) for e in catalog.top_indices(5)]
    remaining = sorted(set(range(catalog.n)) - set(pinned))
    extra = rng.choice(len(remaining), size=n_sample - len(pinned), replace=False)
    chosen = pinned + [remaining[int(k)] for k in extra]
    instance = catalog.subinstance(sorted(chosen), name="CARS[50]")

    # Gold questions come from the cars left out of the sample.
    left_out = sorted(set(range(catalog.n)) - set(chosen))
    gold_values = catalog.values[left_out]
    model = CalibratedCarsWorkerModel(seed=17)

    runs = [
        run_crowdflower_experiment(instance, model, gold_values, rng, u_n=u_n)
        for _ in range(n_experiments)
    ]

    table = TableResult(
        table_id="table2",
        title="CARS: ranking of the last round (task: most expensive car)",
        headers=[
            "car",
            "price",
            *(f"Exp. {k + 1}" for k in range(n_experiments)),
        ],
    )
    for element in instance.top_indices(top_k):
        record = instance.payload(int(element))
        row: list[object] = [record.label, record.price]
        for run in runs:
            position = run.position_of(int(element))
            row.append(position if position is not None else "-")
        table.add_row(row)
    for k, run in enumerate(runs):
        top_position = run.position_of(instance.max_index)
        table.notes.append(
            f"Exp. {k + 1}: {len(run.survivors)} survivors, top car "
            f"{'reached the last round' if run.max_survived else 'DROPPED'} "
            f"(position {top_position}), simulated experts "
            f"{'identified it' if run.winner == instance.max_index else 'failed to identify it'}"
        )
    table.notes.append(
        "paper: the top car always reaches the last round but the simulated "
        "experts cannot identify it — real experts are needed"
    )
    return table


def run_repeated_two_maxfind(
    dataset: str,
    rng: np.random.Generator,
    runs: int = 14,
    n_items: int = 50,
) -> TableResult:
    """The in-text repetitions: naive-only 2-MaxFind, 14 runs per dataset.

    Paper: on DOTS "in all but one case the correct instance was
    returned" (13/14); on CARS "in none of the executions was the real
    [maximum] returned" (0/14).
    """
    if dataset == "dots":
        instance = dots_instance(n_items)
        model: WorkerModel = make_dots_worker()
    elif dataset == "cars":
        catalog = cars_instance(rng=np.random.default_rng(CATALOG_SEED))
        chosen = rng.choice(catalog.n, size=n_items, replace=False)
        if catalog.max_index not in chosen:
            chosen[0] = catalog.max_index
        instance = catalog.subinstance(sorted(int(c) for c in chosen))
        model = CalibratedCarsWorkerModel(seed=17)
    else:
        raise ValueError(f"unknown dataset {dataset!r}")

    table = TableResult(
        table_id=f"2maxfind-naive[{dataset}]",
        title=f"2-MaxFind with naive workers only, {runs} runs on {dataset.upper()}",
        headers=["run", "returned rank", "correct"],
    )
    successes = 0
    for run_idx in range(runs):
        oracle = ComparisonOracle(instance, model, rng)
        winner = two_maxfind(oracle).winner
        rank = instance.rank_of(winner)
        correct = winner == instance.max_index
        successes += int(correct)
        table.add_row([run_idx + 1, rank, "yes" if correct else "no"])
    table.notes.append(f"successes: {successes}/{runs}")
    table.notes.append(
        "paper reference: 13/14 on DOTS, 0/14 on CARS (naive-only fails "
        "exactly where expertise is required)"
    )
    return table


def run_search_evaluation(
    rng: np.random.Generator,
    u_ns: tuple[int, ...] = (6, 8, 10),
    naive_delta: float = 0.15,
    expert_delta: float = 0.02,
    tmf_runs_per_query: int = 2,
) -> TableResult:
    """The search-results evaluation (Section 5.3, in text).

    Naive workers = CrowdFlower crowd with a relative threshold and a
    shared (sometimes wrong) consensus on the fuzzy middle; experts =
    algorithms researchers with a much finer threshold.  For each query
    and each ``u_n(50)``, the two-phase pipeline runs once; then
    naive-only 2-MaxFind runs ``tmf_runs_per_query`` times per query
    ("for a total of four independent runs" in the paper).
    """
    # The crowd's consensus on the fuzzy middle is uninformative
    # (correct half the time): naive judges genuinely cannot tell the
    # best result from the other strong ones, which is why the paper's
    # naive-only baseline succeeded in only 1 of 4 runs.
    naive_model = ThresholdWorkerModel(
        delta=naive_delta,
        relative=True,
        below=CrowdBeliefBehavior(
            CrowdBeliefTable(seed=23, consensus_correct_probability=0.5)
        ),
    )
    expert_model = ThresholdWorkerModel(delta=expert_delta, relative=True, is_expert=True)

    table = TableResult(
        table_id="search-eval",
        title="evaluation of search results: two-phase vs naive-only",
        headers=["query", "u_n(50)", "max promoted", "expert found max"],
    )
    tmf_successes = 0
    tmf_total = 0
    for query in SEARCH_QUERIES:
        instance = search_instance(query, rng)
        for u_n in u_ns:
            naive_oracle = ComparisonOracle(instance, naive_model, rng)
            survivors = filter_candidates(naive_oracle, u_n=u_n).survivors
            promoted = instance.max_index in survivors
            expert_oracle = ComparisonOracle(instance, expert_model, rng)
            winner = two_maxfind(expert_oracle, survivors).winner
            table.add_row(
                [
                    query,
                    u_n,
                    "yes" if promoted else "no",
                    "yes" if winner == instance.max_index else "no",
                ]
            )
        for _ in range(tmf_runs_per_query):
            oracle = ComparisonOracle(instance, naive_model, rng)
            winner = two_maxfind(oracle).winner
            tmf_total += 1
            tmf_successes += int(winner == instance.max_index)
    table.notes.append(
        f"naive-only 2-MaxFind found the best result in "
        f"{tmf_successes}/{tmf_total} runs (paper: 1/4)"
    )
    table.notes.append(
        "paper: the maximum was promoted to the second round in every "
        "configuration, and the experts identified it"
    )
    return table
