"""Baseline shoot-out: prior-work max-finders vs the paper's algorithm.

Section 2 positions the paper against tournament-based max algorithms
(Venetis et al.) that work well in the probabilistic model.  This
experiment runs the full baseline set on the *same* instances under
both error models:

* probabilistic model (distance-independent error ``p``): redundancy
  and tournaments both work — everyone finds (nearly) the maximum;
* threshold model: tournaments and naive-only methods hit the barrier;
  only the expert-aware algorithm keeps its accuracy, at a fraction of
  the expert-only cost.

Competitors: static tournament (fan-in 2, redundancy via 5-vote
majority), 2-MaxFind-naive, 2-MaxFind-expert, and Algorithm 1.
"""

from __future__ import annotations

import numpy as np

from ..core.generators import planted_instance
from ..core.maxfinder import ExpertAwareMaxFinder
from ..core.oracle import ComparisonOracle
from ..core.tournament_max import tournament_max
from ..core.two_maxfind import two_maxfind
from ..workers.aggregation import MajorityOfKModel
from ..workers.expert import make_worker_classes
from ..workers.probabilistic import FixedErrorWorkerModel
from .base import TableResult

__all__ = ["run_baseline_shootout"]


def run_baseline_shootout(
    rng: np.random.Generator,
    n: int = 500,
    u_n: int = 20,
    u_e: int = 4,
    p_error: float = 0.3,
    tournament_votes: int = 5,
    cost_expert: float = 50.0,
    trials: int = 3,
) -> TableResult:
    """All baselines under both error models, accuracy and cost."""
    table = TableResult(
        table_id="baselines",
        title=(
            f"baseline shoot-out (n={n}, u_n={u_n}, p={p_error:g}, "
            f"tournament majority of {tournament_votes}, c_e={cost_expert:g})"
        ),
        headers=["error model", "algorithm", "rank (avg)", "cost (avg)"],
    )
    naive, expert = make_worker_classes(
        delta_n=1.0, delta_e=0.25, cost_n=1.0, cost_e=cost_expert
    )
    probabilistic = FixedErrorWorkerModel(error_probability=p_error)

    results: dict[tuple[str, str], list[tuple[int, float]]] = {}

    def record(model_name: str, algo: str, rank: int, cost: float) -> None:
        results.setdefault((model_name, algo), []).append((rank, cost))

    for _ in range(trials):
        instance = planted_instance(
            n=n, u_n=u_n, u_e=u_e, delta_n=1.0, delta_e=0.25, rng=rng
        )

        # --- probabilistic model: the wisdom-of-crowds regime.
        amplified = MajorityOfKModel(probabilistic, k=tournament_votes, is_expert=False)
        oracle = ComparisonOracle(instance, amplified, rng, memoize=True)
        t_res = tournament_max(oracle, rng=rng)
        record(
            "probabilistic",
            f"tournament (maj. {tournament_votes})",
            instance.rank_of(t_res.winner),
            t_res.comparisons * tournament_votes * 1.0,
        )
        oracle = ComparisonOracle(instance, probabilistic, rng)
        m_res = two_maxfind(oracle)
        record(
            "probabilistic",
            "2-MaxFind (single votes)",
            instance.rank_of(m_res.winner),
            m_res.comparisons * 1.0,
        )

        # --- threshold model: the expert-or-nothing regime.
        amplified_naive = MajorityOfKModel(
            naive.model, k=tournament_votes, is_expert=False
        )
        oracle = ComparisonOracle(instance, amplified_naive, rng)
        t_res = tournament_max(oracle, rng=rng)
        record(
            "threshold",
            f"tournament (maj. {tournament_votes})",
            instance.rank_of(t_res.winner),
            t_res.comparisons * tournament_votes * 1.0,
        )
        oracle = ComparisonOracle(instance, naive.model, rng)
        m_res = two_maxfind(oracle)
        record(
            "threshold",
            "2-MaxFind-naive",
            instance.rank_of(m_res.winner),
            m_res.comparisons * 1.0,
        )
        oracle = ComparisonOracle(instance, expert.model, rng)
        e_res = two_maxfind(oracle)
        record(
            "threshold",
            "2-MaxFind-expert",
            instance.rank_of(e_res.winner),
            e_res.comparisons * cost_expert,
        )
        finder = ExpertAwareMaxFinder(naive=naive, expert=expert, u_n=u_n)
        a_res = finder.run(instance, rng)
        record(
            "threshold",
            "Alg 1 (expert-aware)",
            instance.rank_of(a_res.winner),
            a_res.cost,
        )

    for (model_name, algo), samples in results.items():
        ranks = [s[0] for s in samples]
        costs = [s[1] for s in samples]
        table.add_row([model_name, algo, float(np.mean(ranks)), float(np.mean(costs))])
    table.notes.append(
        "probabilistic model: tournaments with redundancy work; threshold "
        "model: only the expert-aware pipeline keeps high accuracy below "
        "the expert-only price"
    )
    return table
