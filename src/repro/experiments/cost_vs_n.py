"""Figures 5 and 9: monetary cost as a function of n (§5.1 / App. C).

Figure 5 shows the *average* cost and Figure 9 the *worst-case* cost of
the three approaches, with ``c_n = 1`` and ``c_e in {10, 20, 50}`` (one
panel per ``c_e`` and per ``(u_n, u_e)`` setting).  The paper's
conclusion: "unless the cost of an expert is comparable to the cost of
a naive worker (less than 10 times more expensive), we can achieve
great cost savings" — Alg 1 beats 2-MaxFind-expert once ``c_e/c_n``
exceeds roughly 10.
"""

from __future__ import annotations

from ..core.bounds import monetary_cost
from .base import FigureResult
from .sweep import SweepData

__all__ = ["PAPER_EXPERT_COSTS", "figure5_from_sweep", "figure9_from_sweep"]

#: The paper's expert-cost grid (c_n = 1).
PAPER_EXPERT_COSTS = (10, 20, 50)


def figure5_from_sweep(
    data: SweepData, cost_expert: float, cost_naive: float = 1.0
) -> FigureResult:
    """One Figure 5 panel: average cost vs n at the given ``c_e``."""
    config = data.config
    figure = FigureResult(
        figure_id=f"fig5(ce={cost_expert:g})",
        title=(
            f"average cost C(n) vs n "
            f"(c_n={cost_naive:g}, c_e={cost_expert:g}, "
            f"u_n={config.u_n}, u_e={config.u_e})"
        ),
        x_label="n",
        x_values=data.ns,
    )
    figure.add_series(
        "2-MaxFind-expert (avg)",
        [
            monetary_cost(0.0, x, cost_naive, cost_expert)
            for x in data.series("tmf_expert_comparisons")
        ],
    )
    figure.add_series(
        "Alg 1 (avg)",
        [
            monetary_cost(xn, xe, cost_naive, cost_expert)
            for xn, xe in zip(data.series("alg1_naive"), data.series("alg1_expert"))
        ],
    )
    figure.add_series(
        "2-MaxFind-naive (avg)",
        [
            monetary_cost(x, 0.0, cost_naive, cost_expert)
            for x in data.series("tmf_naive_comparisons")
        ],
    )
    figure.notes.append(
        "Alg 1 should undercut 2-MaxFind-expert once c_e/c_n exceeds ~10"
    )
    return figure


def figure9_from_sweep(
    data: SweepData, cost_expert: float, cost_naive: float = 1.0
) -> FigureResult:
    """One Figure 9 panel: worst-case cost vs n at the given ``c_e``."""
    config = data.config
    figure = FigureResult(
        figure_id=f"fig9(ce={cost_expert:g})",
        title=(
            f"worst-case cost C(n) vs n "
            f"(c_n={cost_naive:g}, c_e={cost_expert:g}, "
            f"u_n={config.u_n}, u_e={config.u_e})"
        ),
        x_label="n",
        x_values=data.ns,
    )
    figure.add_series(
        "2-MaxFind-expert (wc)",
        [
            monetary_cost(0.0, x, cost_naive, cost_expert)
            for x in data.wc_series("tmf_expert_wc")
        ],
    )
    figure.add_series(
        "Alg 1 (wc)",
        [
            monetary_cost(xn, xe, cost_naive, cost_expert)
            for xn, xe in zip(
                data.wc_series("alg1_naive_wc"), data.wc_series("alg1_expert_wc")
            )
        ],
    )
    figure.add_series(
        "2-MaxFind-naive (wc)",
        [
            monetary_cost(x, 0.0, cost_naive, cost_expert)
            for x in data.wc_series("tmf_naive_wc")
        ],
    )
    return figure
