"""Experiments for the future-work extensions (Section 3.3's remarks).

Two experiments beyond the paper's evaluation:

* **Cascade vs two-class** — with three worker tiers of strongly
  increasing cost, the cascade inserts a mid-tier filtering stage that
  shields the most expensive class from the crowd-sized population;
  the experiment quantifies the saving against the paper's two-class
  algorithm using (crowd, expert) and against an expert-only baseline.
* **Continuous expertise** — the anonymous-crowd population model:
  accuracy of majority voting on a hard pair as a function of the
  fraction of discerning members in the population.  A homogeneous
  naive crowd stays at the coin flip (the paper's barrier); any
  non-trivial expert fraction unlocks the wisdom-of-crowds regime.
"""

from __future__ import annotations

import numpy as np

from ..core.cascade import CascadeMaxFinder
from ..core.generators import tiered_instance
from ..core.maxfinder import ExpertAwareMaxFinder
from ..core.oracle import ComparisonOracle
from ..core.two_maxfind import two_maxfind
from ..workers.aggregation import majority_vote
from ..workers.continuous import PopulationThresholdModel
from ..workers.expert import WorkerClass
from ..workers.threshold import ThresholdWorkerModel
from .base import FigureResult, TableResult

__all__ = ["run_cascade_experiment", "run_expert_fraction_experiment"]


def run_cascade_experiment(
    rng: np.random.Generator,
    n: int = 1000,
    u_values: tuple[int, int, int] = (30, 10, 4),
    deltas: tuple[float, float, float] = (4.0, 1.0, 0.25),
    costs: tuple[float, float, float] = (1.0, 10.0, 500.0),
    trials: int = 3,
) -> TableResult:
    """Three-tier cascade vs the two-class algorithm vs expert-only."""
    crowd = WorkerClass("crowd", ThresholdWorkerModel(delta=deltas[0]), costs[0])
    skilled = WorkerClass("skilled", ThresholdWorkerModel(delta=deltas[1]), costs[1])
    expert = WorkerClass(
        "expert", ThresholdWorkerModel(delta=deltas[2], is_expert=True), costs[2]
    )

    table = TableResult(
        table_id="ext-cascade",
        title=(
            f"3-tier cascade vs 2-class vs expert-only "
            f"(n={n}, u={u_values}, costs={costs})"
        ),
        headers=["approach", "rank (avg)", "cost (avg)", "expert comparisons (avg)"],
    )
    rows: dict[str, list[list[float]]] = {
        "cascade (crowd>skilled>expert)": [],
        "2-class (crowd>expert)": [],
        "expert-only 2-MaxFind": [],
    }
    for _ in range(trials):
        instance = tiered_instance(
            n=n, u_values=list(u_values), deltas=list(deltas), rng=rng
        )
        cascade = CascadeMaxFinder([crowd, skilled, expert], u_values=list(u_values[:2]))
        c_res = cascade.run(instance, rng)
        rows["cascade (crowd>skilled>expert)"].append(
            [
                instance.rank_of(c_res.winner),
                c_res.total_cost,
                c_res.comparisons_by_class().get("expert", 0),
            ]
        )

        two_class = ExpertAwareMaxFinder(naive=crowd, expert=expert, u_n=u_values[0])
        t_res = two_class.run(instance, rng)
        rows["2-class (crowd>expert)"].append(
            [instance.rank_of(t_res.winner), t_res.cost, t_res.expert_comparisons]
        )

        oracle = ComparisonOracle(
            instance, expert.model, rng, cost_per_comparison=expert.cost_per_comparison
        )
        winner = two_maxfind(oracle).winner
        rows["expert-only 2-MaxFind"].append(
            [instance.rank_of(winner), oracle.cost, oracle.comparisons]
        )

    for name, samples in rows.items():
        arr = np.asarray(samples, dtype=np.float64)
        table.add_row(
            [name, float(arr[:, 0].mean()), float(arr[:, 1].mean()), float(arr[:, 2].mean())]
        )
    table.notes.append(
        "the cascade shields the expensive class: its expert comparisons "
        "depend only on the finest u, not on n"
    )
    return table


def run_expert_fraction_experiment(
    rng: np.random.Generator,
    fractions: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.5, 1.0),
    votes: tuple[int, ...] = (1, 7, 21),
    pair_distance: float = 1.0,
    coarse_delta: float = 10.0,
    fine_delta: float = 0.1,
    population: int = 200,
    samples: int = 2000,
) -> FigureResult:
    """Majority-vote accuracy vs the expert fraction of the population.

    The probed pair sits between the fine and coarse thresholds, so
    only the fine-threshold members discern it.
    """
    figure = FigureResult(
        figure_id="ext-expert-fraction",
        title=(
            "majority accuracy on a hard pair vs expert fraction "
            f"(d={pair_distance:g}, deltas={coarse_delta:g}/{fine_delta:g})"
        ),
        x_label="expert fraction",
        x_values=list(fractions),
    )
    for k in votes:
        ys: list[float] = []
        for fraction in fractions:
            n_fine = int(round(fraction * population))
            deltas = np.concatenate(
                [
                    np.full(n_fine, fine_delta),
                    np.full(population - n_fine, coarse_delta),
                ]
            )
            model = PopulationThresholdModel(deltas)
            vi = np.full(samples, pair_distance)
            vj = np.zeros(samples)
            wins = majority_vote(model, vi, vj, k, rng)
            ys.append(float(np.mean(wins)))
        figure.add_series(f"majority of {k}", ys)
    figure.notes.append(
        "fraction 0 is the paper's homogeneous naive crowd (stuck at 0.5 "
        "for any k); any positive expert fraction lets aggregation work"
    )
    return figure
