"""The tracked perf baseline: timed serial-vs-parallel sweep comparison.

Runs the same sweep grid twice — ``jobs=1`` and ``jobs=N`` — through
:mod:`repro.parallel`, times both, checks the results are bit-identical
(the engine's core guarantee), and packages the numbers as a JSON
payload conventionally stored at ``results/BENCH_sweep.json``.  The
file is the perf trajectory for subsequent changes to beat: wall-clock
per sweep, serial vs parallel, comparisons/second, speedup.

Entry points: the ``repro-experiments bench`` CLI subcommand and the
``benchmarks/test_bench_parallel_sweep.py`` harness, both of which
write the artifact atomically via
:func:`~repro.experiments.artifacts.write_json_atomic`.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, TypeVar

import numpy as np

from ..core.oracle import ComparisonOracle
from ..workers.adversarial import AdversarialWorkerModel
from .base import TableResult
from .estimation_sweep import EstimationConfig, EstimationData, run_estimation_sweep
from .artifacts import write_json_atomic
from .sweep import SweepConfig, SweepData, run_sweep

__all__ = [
    "BENCH_SCHEMA",
    "sweep_comparison_total",
    "estimation_comparison_total",
    "run_bench_comparison",
    "run_oracle_bench",
    "bench_table",
    "oracle_bench_table",
    "bench_identical",
    "write_bench_json",
]

#: Schema tag stamped into every BENCH_sweep.json payload.  v2 adds
#: ``jobs_requested`` / ``jobs_note`` (explicit cpu-count clamping) and
#: the ``oracle`` section (vectorized-vs-scalar comparison hot path).
BENCH_SCHEMA = "repro.bench_sweep/v2"

T = TypeVar("T")


def sweep_comparison_total(data: SweepData) -> int:
    """Total crowd comparisons simulated across all trial runs."""
    total = 0
    for point in data.points:
        total += sum(point.alg1_naive) + sum(point.alg1_expert)
        total += sum(point.tmf_naive_comparisons)
        total += sum(point.tmf_expert_comparisons)
    return total


def estimation_comparison_total(data: EstimationData) -> int:
    """Total crowd comparisons simulated across all estimation cells."""
    return sum(
        sum(cell.naive) + sum(cell.expert) for cell in data.cells.values()
    )


def _sweep_fingerprint(data: SweepData) -> tuple[object, ...]:
    """Everything measured, as one comparable value (bit-identity check)."""
    return tuple(
        (
            point.n,
            tuple(point.alg1_rank),
            tuple(point.alg1_naive),
            tuple(point.alg1_expert),
            tuple(point.tmf_naive_rank),
            tuple(point.tmf_naive_comparisons),
            tuple(point.tmf_expert_rank),
            tuple(point.tmf_expert_comparisons),
            point.tmf_naive_wc,
            point.tmf_expert_wc,
        )
        for point in data.points
    )


def _estimation_fingerprint(data: EstimationData) -> tuple[object, ...]:
    return tuple(
        (
            key,
            tuple(cell.rank),
            tuple(cell.naive),
            tuple(cell.expert),
            cell.max_survived,
        )
        for key, cell in sorted(data.cells.items())
    )


def _timed(fn: Callable[[], T]) -> tuple[float, T]:
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _timed_best(fn: Callable[[], T], repeats: int) -> tuple[float, T]:
    """Best-of-``repeats`` wall-clock for a deterministic callable.

    Single-sample wall-clock on shared/virtualised runners is noisy
    (scheduler jitter and clock steal inflate one run by 50% or more),
    so the bench reports the *minimum* over a few repeats — the
    standard ``timeit`` convention: the fastest observed run is the
    closest estimate of what the code costs.  The callable must be
    deterministic (every repeat returns the same value); the last
    value is returned for the identity checks.
    """
    best = float("inf")
    value: T | None = None
    for _ in range(max(1, repeats)):
        elapsed, value = _timed(fn)
        best = min(best, elapsed)
    assert value is not None
    return best, value


def run_bench_comparison(
    seed: int = 2015,
    sweep_config: SweepConfig | None = None,
    estimation_config: EstimationConfig | None = None,
    jobs: int | None = None,
    repeats: int = 3,
) -> dict[str, Any]:
    """Time each sweep serially and in parallel; return the payload.

    ``jobs=None`` picks ``max(2, cpu_count)`` so the pool path is
    always exercised, even on a single-core box.  A request beyond the
    machine's core count is clamped (extra pool workers only add
    contention and noise to the timing) and the clamp is recorded in
    the payload: ``jobs_requested`` keeps the ask, ``jobs`` the value
    actually run, and ``jobs_note`` says why they differ.  Pass an
    ``estimation_config`` to additionally benchmark the Section 5.2
    sweep under the same protocol.

    Every timing is the best of ``repeats`` runs (recorded as
    ``timing_repeats`` in the payload) — the grids are deterministic,
    so repeats measure the same work and the minimum strips scheduler
    jitter from the tracked numbers.
    """
    if sweep_config is None:
        sweep_config = SweepConfig(ns=(500, 1000, 2000), trials=3)
    cpu_count = os.cpu_count() or 1
    if jobs is None or jobs <= 0:
        jobs_requested = max(2, cpu_count)
    else:
        jobs_requested = jobs
    jobs = max(2, min(jobs_requested, cpu_count))
    jobs_note = ""
    if jobs < jobs_requested:
        jobs_note = (
            f"requested jobs={jobs_requested} clamped to {jobs} "
            f"(cpu_count={cpu_count}); workers beyond the core count only "
            "add contention and timing noise"
        )
    elif jobs > cpu_count:
        jobs_note = (
            f"jobs={jobs} oversubscribes cpu_count={cpu_count} (the pool "
            "path always runs with at least 2 workers); speedup below 1.0 "
            "is expected on this machine"
        )

    # Provenance stamp on the artifact; baseline comparison reads the
    # timing fields, never this, so the payload stays seed-comparable.
    generated_unix = round(time.time(), 3)  # repro-lint: disable=DET002 -- provenance stamp only
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "seed": seed,
        "jobs": jobs,
        "jobs_requested": jobs_requested,
        "jobs_note": jobs_note,
        "cpu_count": cpu_count,
        "timing_repeats": max(1, repeats),
        "generated_unix": generated_unix,
        "sweeps": {},
    }

    # All serial lanes are timed first, before any process pool is
    # spawned: the serial numbers are the hot-path trajectory CI tracks,
    # so they get the quietest part of the process (no fork/teardown
    # noise, and on burstable runners the least CPU-throttled window).
    serial_sweep_s, serial = _timed_best(
        lambda: run_sweep(sweep_config, np.random.default_rng(seed), jobs=1),
        repeats,
    )
    serial_est_s = 0.0
    serial_est: EstimationData | None = None
    if estimation_config is not None:
        serial_est_s, serial_est = _timed_best(
            lambda: run_estimation_sweep(
                estimation_config, np.random.default_rng(seed), jobs=1
            ),
            repeats,
        )
    parallel_s, parallel = _timed_best(
        lambda: run_sweep(sweep_config, np.random.default_rng(seed), jobs=jobs),
        repeats,
    )
    comparisons = sweep_comparison_total(serial)
    payload["sweeps"]["sweep"] = _section(
        grid={
            "ns": list(sweep_config.ns),
            "u_n": sweep_config.u_n,
            "u_e": sweep_config.u_e,
            "trials": sweep_config.trials,
        },
        comparisons=comparisons,
        serial_s=serial_sweep_s,
        parallel_s=parallel_s,
        identical=_sweep_fingerprint(serial) == _sweep_fingerprint(parallel),
    )

    if estimation_config is not None:
        assert serial_est is not None
        parallel_s, parallel_est = _timed_best(
            lambda: run_estimation_sweep(
                estimation_config, np.random.default_rng(seed), jobs=jobs
            ),
            repeats,
        )
        payload["sweeps"]["estimation"] = _section(
            grid={
                "ns": list(estimation_config.ns),
                "u_n": estimation_config.u_n,
                "u_e": estimation_config.u_e,
                "factors": list(estimation_config.factors),
                "trials": estimation_config.trials,
            },
            comparisons=estimation_comparison_total(serial_est),
            serial_s=serial_est_s,
            parallel_s=parallel_s,
            identical=(
                _estimation_fingerprint(serial_est)
                == _estimation_fingerprint(parallel_est)
            ),
        )

    payload["oracle"] = run_oracle_bench(seed, repeats=repeats)
    return payload


#: Oracle micro-bench workload: element count and pair-batch size.  The
#: batch is drawn with duplicates and replayed once, so the run crosses
#: every memo lane (fresh, dedup, memo-hit) in both storage modes.
_ORACLE_BENCH_N = 1200
_ORACLE_BENCH_PAIRS = 15_000


def run_oracle_bench(seed: int = 2015, repeats: int = 3) -> dict[str, Any]:
    """Vectorized vs scalar comparison hot path, dense and dict memo.

    Runs the same pair workload through ``ComparisonOracle.compare``
    (one scalar call per pair) and ``compare_pairs`` (one ndarray
    call), once with the dense ``n x n`` memo and once with the
    dict-backed memo (``dense_memo_limit=0``) — the boundary the memo
    lookup switches representation across.  The comparator is a
    deterministic adversary, so both paths must return bit-identical
    winners whatever their RNG granularity; ``identical`` is the
    correctness gate CI fails on.

    Each lane is timed ``repeats`` times against a freshly built
    oracle (the memo must start empty every repeat) and the best run
    is reported, matching the sweep protocol.
    """
    rng = np.random.default_rng(seed)
    values = rng.random(_ORACLE_BENCH_N)
    ii = rng.integers(0, _ORACLE_BENCH_N, _ORACLE_BENCH_PAIRS)
    jj = (ii + 1 + rng.integers(0, _ORACLE_BENCH_N - 1, _ORACLE_BENCH_PAIRS)) % (
        _ORACLE_BENCH_N
    )
    # Replay the batch once: the second pass is all memo hits.
    ii = np.concatenate([ii, ii])
    jj = np.concatenate([jj, jj])

    section: dict[str, Any] = {"n": _ORACLE_BENCH_N, "pairs": int(len(ii)), "cases": {}}
    all_identical = True
    for label, dense_limit in (("dense", None), ("dict", 0)):
        def build() -> ComparisonOracle:
            return ComparisonOracle(
                values,
                AdversarialWorkerModel(delta=0.3, policy="first_loses"),
                np.random.default_rng(seed),
                dense_memo_limit=dense_limit,
            )

        scalar_s = vector_s = float("inf")
        for _ in range(max(1, repeats)):
            scalar_oracle = build()
            elapsed, scalar_winners = _timed(
                lambda: np.array(
                    [scalar_oracle.compare(int(a), int(b)) for a, b in zip(ii, jj)]  # repro-lint: disable=VEC001 -- the scalar lane IS the benchmark baseline
                )
            )
            scalar_s = min(scalar_s, elapsed)
            vector_oracle = build()
            elapsed, vector_winners = _timed(
                lambda: vector_oracle.compare_pairs(ii, jj)
            )
            vector_s = min(vector_s, elapsed)
        identical = bool(np.array_equal(scalar_winners, vector_winners))
        all_identical = all_identical and identical
        section["cases"][label] = {
            "scalar_s": round(scalar_s, 6),
            "vectorized_s": round(vector_s, 6),
            "speedup": round(scalar_s / vector_s, 2) if vector_s > 0 else None,
            "scalar_cmp_per_sec": (
                round(len(ii) / scalar_s, 1) if scalar_s > 0 else None
            ),
            "vectorized_cmp_per_sec": (
                round(len(ii) / vector_s, 1) if vector_s > 0 else None
            ),
            "identical": identical,
        }
    section["identical"] = all_identical
    return section


def bench_identical(payload: dict[str, Any]) -> bool:
    """Whether every bit-identity check in the payload passed.

    The CLI turns a ``False`` into a nonzero exit code so CI fails on
    a correctness regression, not just a slow build.
    """
    flags = [section["identical"] for section in payload["sweeps"].values()]
    oracle = payload.get("oracle")
    if oracle is not None:
        flags.append(oracle["identical"])
    return all(flags)


def _section(
    *,
    grid: dict[str, Any],
    comparisons: int,
    serial_s: float,
    parallel_s: float,
    identical: bool,
) -> dict[str, Any]:
    return {
        "grid": grid,
        "comparisons": comparisons,
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 4) if parallel_s > 0 else None,
        "comparisons_per_sec_serial": (
            round(comparisons / serial_s, 1) if serial_s > 0 else None
        ),
        "comparisons_per_sec_parallel": (
            round(comparisons / parallel_s, 1) if parallel_s > 0 else None
        ),
        "identical": identical,
    }


def bench_table(payload: dict[str, Any]) -> TableResult:
    """Render a BENCH_sweep payload as the speedup table the CLI prints."""
    table = TableResult(
        table_id="bench-sweep",
        title=(
            f"serial vs parallel sweep wall-clock "
            f"(jobs={payload['jobs']}, cpu_count={payload['cpu_count']})"
        ),
        headers=[
            "sweep",
            "comparisons",
            "serial (s)",
            "parallel (s)",
            "speedup",
            "cmp/s serial",
            "cmp/s parallel",
            "identical",
        ],
    )
    for name, section in payload["sweeps"].items():
        table.add_row(
            [
                name,
                section["comparisons"],
                section["serial_s"],
                section["parallel_s"],
                section["speedup"],
                section["comparisons_per_sec_serial"],
                section["comparisons_per_sec_parallel"],
                "yes" if section["identical"] else "NO",
            ]
        )
    table.notes.append(
        "parallel results are verified bit-identical to serial before "
        "timing is reported; see docs/PERFORMANCE.md"
    )
    if payload.get("jobs_note"):
        table.notes.append(payload["jobs_note"])
    return table


def oracle_bench_table(payload: dict[str, Any]) -> TableResult:
    """Render the oracle section as the vectorized-vs-scalar table."""
    section = payload["oracle"]
    table = TableResult(
        table_id="bench-oracle",
        title=(
            f"vectorized vs scalar comparison hot path "
            f"(n={section['n']}, {section['pairs']} pair requests)"
        ),
        headers=[
            "memo",
            "scalar (s)",
            "vectorized (s)",
            "speedup",
            "cmp/s scalar",
            "cmp/s vectorized",
            "identical",
        ],
    )
    for label, case in section["cases"].items():
        table.add_row(
            [
                label,
                case["scalar_s"],
                case["vectorized_s"],
                case["speedup"],
                case["scalar_cmp_per_sec"],
                case["vectorized_cmp_per_sec"],
                "yes" if case["identical"] else "NO",
            ]
        )
    table.notes.append(
        "same pair workload (with duplicates, replayed once for memo "
        "hits) through compare() per pair vs one compare_pairs() call; "
        "a deterministic adversary makes the winners comparable bit-for-bit"
    )
    return table


def write_bench_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Persist the baseline atomically (safe under concurrent shards)."""
    return write_json_atomic(path, payload)
