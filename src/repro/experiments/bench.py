"""The tracked perf baseline: timed serial-vs-parallel sweep comparison.

Runs the same sweep grid twice — ``jobs=1`` and ``jobs=N`` — through
:mod:`repro.parallel`, times both, checks the results are bit-identical
(the engine's core guarantee), and packages the numbers as a JSON
payload conventionally stored at ``results/BENCH_sweep.json``.  The
file is the perf trajectory for subsequent changes to beat: wall-clock
per sweep, serial vs parallel, comparisons/second, speedup.

Entry points: the ``repro-experiments bench`` CLI subcommand and the
``benchmarks/test_bench_parallel_sweep.py`` harness, both of which
write the artifact atomically via
:func:`~repro.experiments.io.write_json_atomic`.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, TypeVar

import numpy as np

from .base import TableResult
from .estimation_sweep import EstimationConfig, EstimationData, run_estimation_sweep
from .io import write_json_atomic
from .sweep import SweepConfig, SweepData, run_sweep

__all__ = [
    "BENCH_SCHEMA",
    "sweep_comparison_total",
    "estimation_comparison_total",
    "run_bench_comparison",
    "bench_table",
    "write_bench_json",
]

#: Schema tag stamped into every BENCH_sweep.json payload.
BENCH_SCHEMA = "repro.bench_sweep/v1"

T = TypeVar("T")


def sweep_comparison_total(data: SweepData) -> int:
    """Total crowd comparisons simulated across all trial runs."""
    total = 0
    for point in data.points:
        total += sum(point.alg1_naive) + sum(point.alg1_expert)
        total += sum(point.tmf_naive_comparisons)
        total += sum(point.tmf_expert_comparisons)
    return total


def estimation_comparison_total(data: EstimationData) -> int:
    """Total crowd comparisons simulated across all estimation cells."""
    return sum(
        sum(cell.naive) + sum(cell.expert) for cell in data.cells.values()
    )


def _sweep_fingerprint(data: SweepData) -> tuple[object, ...]:
    """Everything measured, as one comparable value (bit-identity check)."""
    return tuple(
        (
            point.n,
            tuple(point.alg1_rank),
            tuple(point.alg1_naive),
            tuple(point.alg1_expert),
            tuple(point.tmf_naive_rank),
            tuple(point.tmf_naive_comparisons),
            tuple(point.tmf_expert_rank),
            tuple(point.tmf_expert_comparisons),
            point.tmf_naive_wc,
            point.tmf_expert_wc,
        )
        for point in data.points
    )


def _estimation_fingerprint(data: EstimationData) -> tuple[object, ...]:
    return tuple(
        (
            key,
            tuple(cell.rank),
            tuple(cell.naive),
            tuple(cell.expert),
            cell.max_survived,
        )
        for key, cell in sorted(data.cells.items())
    )


def _timed(fn: Callable[[], T]) -> tuple[float, T]:
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def run_bench_comparison(
    seed: int = 2015,
    sweep_config: SweepConfig | None = None,
    estimation_config: EstimationConfig | None = None,
    jobs: int | None = None,
) -> dict[str, Any]:
    """Time each sweep serially and in parallel; return the payload.

    ``jobs=None`` picks ``max(2, cpu_count)`` so the pool path is
    always exercised, even on a single-core box.  Pass an
    ``estimation_config`` to additionally benchmark the Section 5.2
    sweep under the same protocol.
    """
    if sweep_config is None:
        sweep_config = SweepConfig(ns=(500, 1000, 2000), trials=3)
    if jobs is None or jobs <= 0:
        jobs = max(2, os.cpu_count() or 1)

    # Provenance stamp on the artifact; baseline comparison reads the
    # timing fields, never this, so the payload stays seed-comparable.
    generated_unix = round(time.time(), 3)  # repro-lint: disable=DET002 -- provenance stamp only
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "seed": seed,
        "jobs": jobs,
        "cpu_count": os.cpu_count() or 1,
        "generated_unix": generated_unix,
        "sweeps": {},
    }

    serial_s, serial = _timed(
        lambda: run_sweep(sweep_config, np.random.default_rng(seed), jobs=1)
    )
    parallel_s, parallel = _timed(
        lambda: run_sweep(sweep_config, np.random.default_rng(seed), jobs=jobs)
    )
    comparisons = sweep_comparison_total(serial)
    payload["sweeps"]["sweep"] = _section(
        grid={
            "ns": list(sweep_config.ns),
            "u_n": sweep_config.u_n,
            "u_e": sweep_config.u_e,
            "trials": sweep_config.trials,
        },
        comparisons=comparisons,
        serial_s=serial_s,
        parallel_s=parallel_s,
        identical=_sweep_fingerprint(serial) == _sweep_fingerprint(parallel),
    )

    if estimation_config is not None:
        serial_s, serial_est = _timed(
            lambda: run_estimation_sweep(
                estimation_config, np.random.default_rng(seed), jobs=1
            )
        )
        parallel_s, parallel_est = _timed(
            lambda: run_estimation_sweep(
                estimation_config, np.random.default_rng(seed), jobs=jobs
            )
        )
        payload["sweeps"]["estimation"] = _section(
            grid={
                "ns": list(estimation_config.ns),
                "u_n": estimation_config.u_n,
                "u_e": estimation_config.u_e,
                "factors": list(estimation_config.factors),
                "trials": estimation_config.trials,
            },
            comparisons=estimation_comparison_total(serial_est),
            serial_s=serial_s,
            parallel_s=parallel_s,
            identical=(
                _estimation_fingerprint(serial_est)
                == _estimation_fingerprint(parallel_est)
            ),
        )
    return payload


def _section(
    *,
    grid: dict[str, Any],
    comparisons: int,
    serial_s: float,
    parallel_s: float,
    identical: bool,
) -> dict[str, Any]:
    return {
        "grid": grid,
        "comparisons": comparisons,
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 4) if parallel_s > 0 else None,
        "comparisons_per_sec_serial": (
            round(comparisons / serial_s, 1) if serial_s > 0 else None
        ),
        "comparisons_per_sec_parallel": (
            round(comparisons / parallel_s, 1) if parallel_s > 0 else None
        ),
        "identical": identical,
    }


def bench_table(payload: dict[str, Any]) -> TableResult:
    """Render a BENCH_sweep payload as the speedup table the CLI prints."""
    table = TableResult(
        table_id="bench-sweep",
        title=(
            f"serial vs parallel sweep wall-clock "
            f"(jobs={payload['jobs']}, cpu_count={payload['cpu_count']})"
        ),
        headers=[
            "sweep",
            "comparisons",
            "serial (s)",
            "parallel (s)",
            "speedup",
            "cmp/s serial",
            "cmp/s parallel",
            "identical",
        ],
    )
    for name, section in payload["sweeps"].items():
        table.add_row(
            [
                name,
                section["comparisons"],
                section["serial_s"],
                section["parallel_s"],
                section["speedup"],
                section["comparisons_per_sec_serial"],
                section["comparisons_per_sec_parallel"],
                "yes" if section["identical"] else "NO",
            ]
        )
    table.notes.append(
        "parallel results are verified bit-identical to serial before "
        "timing is reported; see docs/PERFORMANCE.md"
    )
    return table


def write_bench_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Persist the baseline atomically (safe under concurrent shards)."""
    return write_json_atomic(path, payload)
