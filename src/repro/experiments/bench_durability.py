"""Durability benchmark: cold vs. resumed vs. warm-cache runs.

Comparisons are money, so durable state has a measurable value: a
killed run resumes from its journal without re-buying settled batches,
and a later run over the same catalogs warm-starts from the persistent
comparison store instead of paying again.  This module measures both
on the standard scheduler workload and packages the numbers as a JSON
payload conventionally stored at ``results/BENCH_durability.json``:

* **cold** — a fresh state directory: full price, plus the journal and
  cache-persistence overhead (the honest cost of durability);
* **resume** — the same workload pointed at the completed journal:
  every batch replays from disk, zero judgments are bought, and the
  results must be bit-identical to the cold run;
* **warm** — the journal cleared but the persistent comparison store
  kept: the cross-job cache warm-starts, so repeated-catalog traffic
  is served from disk-backed memory.

Entry points: the ``repro-experiments bench-durability`` and
``repro-experiments resume`` CLI subcommands and the CI durability
smoke job (see ``docs/DURABILITY.md``).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from ..durability import DurabilityPolicy
from ..scheduler import CrowdScheduler, DurableComparisonCache
from ..scheduler.engine import JobOutcome
from .artifacts import write_json_atomic
from .base import TableResult
from .bench_scheduler import SchedulerWorkload, default_workload

__all__ = [
    "DURABILITY_BENCH_SCHEMA",
    "RESUME_SCHEMA",
    "run_durable_workload",
    "outcomes_payload",
    "run_durability_bench",
    "durability_bench_table",
    "write_durability_bench_json",
]

#: Schema tag stamped into every BENCH_durability.json payload.
DURABILITY_BENCH_SCHEMA = "repro.bench_durability/v1"

#: Schema tag of the ``outcomes.json`` parity artifact ``resume`` writes.
RESUME_SCHEMA = "repro.resume/v1"


def run_durable_workload(
    workload: SchedulerWorkload,
    state_dir: str | Path,
    quantum: int | None = 64,
    crash_after: int | None = None,
) -> tuple[list[JobOutcome], CrowdScheduler, float]:
    """Run (or resume) the workload with durable state in ``state_dir``.

    Builds a journaling, cache-persisting scheduler, submits the
    workload, and runs it; if the directory's journal already records
    this workload, the run resumes from it.  Returns the outcomes, the
    scheduler (for replay/cache statistics), and the wall-clock
    seconds.  ``crash_after`` arms the journal's SIGKILL test hook.
    """
    policy = DurabilityPolicy(state_dir, crash_after_appends=crash_after)
    scheduler = CrowdScheduler(
        workload.pools(),
        root_seed=workload.seed,
        quantum=quantum,
        durability=policy,
    )
    for job in workload.jobs():
        scheduler.submit(job)
    start = time.perf_counter()
    outcomes = scheduler.run()
    return outcomes, scheduler, time.perf_counter() - start


def _ledger_state(outcome: JobOutcome) -> dict[str, list[float]]:
    platform = outcome.ticket.platform
    assert platform is not None
    return {
        label: [entry.operations, entry.money]
        for label, entry in sorted(platform.ledger.entries.items())
    }


def outcomes_payload(
    outcomes: list[JobOutcome], scheduler: CrowdScheduler, wall_s: float
) -> dict[str, Any]:
    """The ``outcomes.json`` parity artifact for one (resumed) run.

    The ``jobs`` section carries everything the crash-recovery harness
    compares bit-for-bit — answers, costs (unrounded floats), ledger
    entries, and step counters — while ``run`` carries replay/cache
    statistics that legitimately differ between an interrupted and an
    uninterrupted run (wall clock, batches replayed).
    """
    jobs: list[dict[str, Any]] = []
    for outcome in outcomes:
        result = outcome.result
        jobs.append(
            {
                "job_index": outcome.ticket.index,
                "settle_index": outcome.settle_index,
                "status": outcome.status,
                "answer": list(result.answer) if result is not None else None,
                "total_cost": result.total_cost if result is not None else None,
                "naive_comparisons": (
                    result.naive_comparisons if result is not None else None
                ),
                "expert_comparisons": (
                    result.expert_comparisons if result is not None else None
                ),
                "logical_steps": result.logical_steps if result is not None else None,
                "physical_steps": result.physical_steps if result is not None else None,
                "ledger": _ledger_state(outcome),
            }
        )
    cache = scheduler.cache
    return {
        "schema": RESUME_SCHEMA,
        "jobs": jobs,
        "run": {
            "wall_s": round(wall_s, 6),
            "ticks": scheduler.ticks,
            "replayed_batches": scheduler.replayed_batches,
            "replayed_operations": scheduler.replayed_operations,
            "cache_hits": cache.hits if cache is not None else None,
            "cache_misses": cache.misses if cache is not None else None,
            "warm_entries": (
                cache.warm_entries
                if isinstance(cache, DurableComparisonCache)
                else None
            ),
        },
    }


def _arm_stats(
    outcomes: list[JobOutcome], scheduler: CrowdScheduler, wall_s: float
) -> dict[str, Any]:
    judgments = 0
    money = 0.0
    for outcome in outcomes:
        platform = outcome.ticket.platform
        assert platform is not None
        judgments += platform.ledger.operations()
        money += platform.ledger.total_cost
    cache = scheduler.cache
    return {
        "wall_s": round(wall_s, 6),
        "judgments": judgments,
        "judgments_bought": judgments - scheduler.replayed_operations,
        "money": round(money, 2),
        "money_spent": round(money - scheduler.replayed_money, 2),
        "replayed_batches": scheduler.replayed_batches,
        "cache_hits": cache.hits if cache is not None else 0,
        "cache_misses": cache.misses if cache is not None else 0,
        "warm_entries": (
            cache.warm_entries if isinstance(cache, DurableComparisonCache) else 0
        ),
    }


def _job_signature(
    outcomes: list[JobOutcome], include_cost: bool = True
) -> list[tuple[Any, ...]]:
    sig = []
    for outcome in sorted(outcomes, key=lambda o: o.ticket.index):
        result = outcome.result
        sig.append(
            (
                outcome.ticket.index,
                outcome.status,
                tuple(result.answer) if result is not None else None,
                (result.total_cost if result is not None else None)
                if include_cost
                else None,
            )
        )
    return sig


def run_durability_bench(
    state_dir: str | Path,
    seed: int = 2015,
    n_jobs: int = 8,
    quantum: int | None = 64,
    workload: SchedulerWorkload | None = None,
) -> dict[str, Any]:
    """Run the cold / resume / warm arms; returns the payload.

    ``state_dir`` must be empty (or absent): the cold arm populates it,
    the resume arm replays its journal, and the warm arm clears the
    journal but keeps the comparison store.
    """
    if workload is None:
        workload = default_workload(seed=seed, n_jobs=n_jobs)
    state_dir = Path(state_dir)
    policy = DurabilityPolicy(state_dir)
    if policy.journal_path.exists() or policy.cache_path.exists():
        raise ValueError(
            f"{state_dir} already holds durable state; the bench needs a "
            "fresh directory so the cold arm is actually cold"
        )

    cold_out, cold_sched, cold_s = run_durable_workload(
        workload, state_dir, quantum=quantum
    )
    resume_out, resume_sched, resume_s = run_durable_workload(
        workload, state_dir, quantum=quantum
    )
    # Warm arm: journal gone (fresh run), comparison store kept.
    policy.journal_path.unlink()
    warm_out, warm_sched, warm_s = run_durable_workload(
        workload, state_dir, quantum=quantum
    )

    cold = _arm_stats(cold_out, cold_sched, cold_s)
    resume = _arm_stats(resume_out, resume_sched, resume_s)
    warm = _arm_stats(warm_out, warm_sched, warm_s)
    # Resume must be bit-identical (costs included); the warm arm is
    # strictly cheaper by construction, so only the answers must agree.
    resume["identical_to_cold"] = _job_signature(resume_out) == _job_signature(cold_out)
    warm["answers_match_cold"] = _job_signature(
        warm_out, include_cost=False
    ) == _job_signature(cold_out, include_cost=False)
    warm["judgments_saved"] = cold["judgments_bought"] - warm["judgments_bought"]
    warm["money_saved"] = round(cold["money_spent"] - warm["money_spent"], 2)

    # Provenance stamp on the artifact; comparisons read the measured
    # fields, never this, so the payload stays seed-comparable.
    generated_unix = round(time.time(), 3)  # repro-lint: disable=DET002 -- provenance stamp only
    return {
        "schema": DURABILITY_BENCH_SCHEMA,
        "seed": workload.seed,
        "generated_unix": generated_unix,
        "workload": {
            "n_jobs": workload.n_jobs,
            "n": workload.n,
            "u_n": workload.u_n,
            "catalogs": workload.catalogs,
            "quantum": quantum,
        },
        "cold": cold,
        "resume": resume,
        "warm": warm,
    }


def durability_bench_table(payload: dict[str, Any]) -> TableResult:
    """Render a BENCH_durability payload as the table the CLI prints."""
    workload = payload["workload"]
    table = TableResult(
        table_id="bench-durability",
        title=(
            f"durable state: {workload['n_jobs']} jobs over "
            f"{workload['catalogs']} catalogs (n={workload['n']})"
        ),
        headers=["arm", "wall (s)", "judgments bought", "money", "notes"],
    )
    cold = payload["cold"]
    resume = payload["resume"]
    warm = payload["warm"]
    table.add_row(
        [
            "cold",
            cold["wall_s"],
            cold["judgments_bought"],
            cold["money_spent"],
            "fresh state dir (journal + store written)",
        ]
    )
    table.add_row(
        [
            "resume",
            resume["wall_s"],
            resume["judgments_bought"],
            resume["money_spent"],
            (
                f"replayed {resume['replayed_batches']} batches from the "
                "journal"
                + (
                    ", bit-identical to cold"
                    if resume["identical_to_cold"]
                    else ", NOT identical to cold"
                )
            ),
        ]
    )
    table.add_row(
        [
            "warm",
            warm["wall_s"],
            warm["judgments_bought"],
            warm["money_spent"],
            (
                f"{warm['warm_entries']} entries warm-loaded, saved "
                f"{warm['judgments_saved']} judgments / "
                f"{warm['money_saved']} money vs cold"
            ),
        ]
    )
    table.notes.append(
        "resume replays the cold run's journal (zero re-spend); warm "
        "keeps only the persistent comparison store; see docs/DURABILITY.md"
    )
    return table


def write_durability_bench_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Persist the artifact atomically (safe under concurrent shards)."""
    return write_json_atomic(path, payload)
