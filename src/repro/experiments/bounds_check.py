"""Empirical validation of the paper's bounds (Sections 4.2-4.3).

For a grid of instance sizes, this experiment measures the comparison
counts of the two-phase algorithm and checks them against:

* the Lemma 3 upper bound ``4 n u_n`` on naive comparisons,
* the Corollary 1 lower bound ``n u_n / 4`` (any correct naive filter
  must use at least this many — so the measurement sits between the
  two envelopes, empirically confirming the constant-factor optimality
  claim),
* the Theorem 1 upper bound ``2 (2 u_n - 1)^{3/2}`` on expert
  comparisons, with the Lemma 6 lower bound ``u_n^{4/3}`` below it,
* the Lemma 3 survivor-size bound ``2 u_n - 1``.
"""

from __future__ import annotations

import numpy as np

from ..core.bounds import (
    expert_comparisons_lower_bound_deterministic,
    filter_comparisons_upper_bound,
    naive_comparisons_lower_bound,
    survivor_upper_bound,
    two_maxfind_comparisons_upper_bound,
)
from ..core.generators import planted_instance
from ..core.maxfinder import ExpertAwareMaxFinder
from ..workers.expert import make_worker_classes
from .base import TableResult

__all__ = ["run_bounds_check"]


def run_bounds_check(
    rng: np.random.Generator,
    ns: tuple[int, ...] = (500, 1000, 2000, 4000),
    u_n: int = 10,
    u_e: int = 5,
    trials: int = 3,
) -> TableResult:
    """Measure comparison counts against the theoretical envelopes."""
    naive, expert = make_worker_classes(delta_n=1.0, delta_e=0.25)
    finder = ExpertAwareMaxFinder(naive=naive, expert=expert, u_n=u_n)

    table = TableResult(
        table_id="bounds",
        title=f"measured comparisons vs theory envelopes (u_n={u_n}, u_e={u_e})",
        headers=[
            "n",
            "naive lower (n*u/4)",
            "naive measured (avg)",
            "naive upper (4*n*u)",
            "expert lower (u^{4/3})",
            "expert measured (avg)",
            "expert upper (2*(2u-1)^1.5)",
            "survivors (max)",
            "survivor bound (2u-1)",
            "within bounds",
        ],
    )
    for n in ns:
        naive_counts: list[int] = []
        expert_counts: list[int] = []
        survivor_counts: list[int] = []
        for _ in range(trials):
            instance = planted_instance(
                n=n, u_n=u_n, u_e=u_e, delta_n=1.0, delta_e=0.25, rng=rng
            )
            result = finder.run(instance, rng)
            naive_counts.append(result.naive_comparisons)
            expert_counts.append(result.expert_comparisons)
            survivor_counts.append(result.survivor_count)
        naive_avg = float(np.mean(naive_counts))
        expert_avg = float(np.mean(expert_counts))
        naive_upper = filter_comparisons_upper_bound(n, u_n)
        expert_upper = two_maxfind_comparisons_upper_bound(survivor_upper_bound(u_n))
        ok = (
            max(naive_counts) <= naive_upper
            and max(expert_counts) <= expert_upper
            and max(survivor_counts) <= survivor_upper_bound(u_n)
        )
        table.add_row(
            [
                n,
                naive_comparisons_lower_bound(n, u_n),
                naive_avg,
                naive_upper,
                expert_comparisons_lower_bound_deterministic(u_n),
                expert_avg,
                expert_upper,
                max(survivor_counts),
                survivor_upper_bound(u_n),
                "yes" if ok else "NO",
            ]
        )
    table.notes.append(
        "the measured counts must sit inside [lower, upper]; this is the "
        "empirical face of the optimality claims of Sections 4.2-4.3"
    )
    return table
