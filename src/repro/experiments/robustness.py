"""Robustness experiments: relaxing the paper's analysis assumptions.

Three sweeps probing assumptions the paper makes "for the sake of
presentation":

* **Residual-error sweep** — §4, Remark: "we assume that both residual
  errors eps_n and eps_e are equal to 0.  Our results can be extended
  to any value less than 1/2."  The sweep runs Algorithm 1 with
  ``eps_n = eps_e = eps`` over a grid of eps values and reports the
  returned rank and the survival rate of the true maximum: graceful
  degradation up to eps well below 1/2, collapse as eps approaches it.
* **Fatigue sweep** — workers degrade during the job
  (:mod:`repro.workers.drift`); with continuous gold probing the
  platform bans workers *mid-job* once fatigue pushes them under the
  bar, and the job still completes with the remaining workforce.
* **Fault sweep** — the paper assumes every requested judgment arrives;
  :func:`run_fault_sweep` injects task abandonment at growing rates
  (plus an optional base plan of stragglers/offline windows, e.g. from
  the CLI's ``--fault-plan``) and measures accuracy, cost, and the
  resilience counters as the retry layer absorbs the damage.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.generators import planted_instance
from ..core.maxfinder import ExpertAwareMaxFinder
from ..parallel import RunSpec, execute_runs, failure_notes, spawn_run_seeds
from ..platform.faults import FaultPlan, RetryPolicy
from ..platform.gold import GoldPolicy
from ..platform.job import ComparisonTask
from ..platform.platform import CrowdPlatform
from ..platform.workforce import WorkerPool
from ..jobs import CrowdMaxJob, JobPhaseConfig
from ..workers.aggregation import MajorityOfKModel
from ..workers.drift import FatigueWorkerModel
from ..workers.expert import WorkerClass, make_worker_classes
from ..workers.threshold import ThresholdWorkerModel
from .base import TableResult

__all__ = ["run_epsilon_robustness", "run_fatigue_experiment", "run_fault_sweep"]


def run_epsilon_robustness(
    rng: np.random.Generator,
    n: int = 500,
    u_n: int = 8,
    u_e: int = 3,
    epsilons: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45),
    trials: int = 5,
) -> TableResult:
    """Algorithm 1 accuracy as the residual error eps grows."""
    table = TableResult(
        table_id="robustness-eps",
        title=f"Algorithm 1 under residual error eps (n={n}, u_n={u_n})",
        headers=[
            "eps",
            "rank (avg)",
            "max survived",
            "rank w/ 5-vote majority (avg)",
            "max survived w/ majority",
        ],
    )
    for eps in epsilons:
        naive, expert = make_worker_classes(
            delta_n=1.0, delta_e=0.25, eps_n=eps, eps_e=eps
        )
        # Redundancy arm: each naive comparison is the majority of 5
        # independent judgments, amplifying 1 - eps back toward 1 above
        # the threshold (the mechanism behind the paper's "extends to
        # any value less than 1/2" — at 5x the phase-1 cost).
        amplified = WorkerClass(
            name="naive-x5",
            model=MajorityOfKModel(naive.model, k=5, is_expert=False),
            cost_per_comparison=5 * naive.cost_per_comparison,
        )
        plain_finder = ExpertAwareMaxFinder(naive=naive, expert=expert, u_n=u_n)
        amplified_finder = ExpertAwareMaxFinder(
            naive=amplified, expert=expert, u_n=u_n
        )
        ranks: list[int] = []
        amp_ranks: list[int] = []
        survived = 0
        amp_survived = 0
        for _ in range(trials):
            instance = planted_instance(
                n=n, u_n=u_n, u_e=u_e, delta_n=1.0, delta_e=0.25, rng=rng
            )
            result = plain_finder.run(instance, rng)
            ranks.append(instance.rank_of(result.winner))
            survived += int(instance.max_index in result.survivors)
            amp_result = amplified_finder.run(instance, rng)
            amp_ranks.append(instance.rank_of(amp_result.winner))
            amp_survived += int(instance.max_index in amp_result.survivors)
        table.add_row(
            [
                eps,
                float(np.mean(ranks)),
                f"{survived}/{trials}",
                float(np.mean(amp_ranks)),
                f"{amp_survived}/{trials}",
            ]
        )
    table.notes.append(
        "expected: the plain algorithm degrades as eps grows; majority "
        "amplification restores the eps ~ 0 behaviour (at 5x phase-1 "
        "cost) for any eps bounded away from 1/2 — the paper's claimed "
        "extension, made concrete"
    )
    return table


def run_fatigue_experiment(
    rng: np.random.Generator,
    n_items: int = 30,
    pool_size: int = 12,
    fatigue_rate: float = 0.02,
    judgments_per_task: int = 3,
    n_batches: int = 6,
) -> TableResult:
    """Mid-job bans of fatiguing workers under continuous gold probing."""
    base = ThresholdWorkerModel(delta=1.0)
    roster = [
        FatigueWorkerModel(base, fatigue_rate=fatigue_rate, max_extra_error=0.45)
        for _ in range(pool_size)
    ]
    pool = WorkerPool.from_models("naive", list(roster), cost_per_judgment=1.0)
    gold = GoldPolicy.from_values(
        rng.uniform(0.0, 300.0, size=30),
        rng,
        n_pairs=20,
        gold_fraction=0.25,
        min_gold_answers=4,
        ban_threshold=0.7,
        # easy gold: honest-but-rested workers pass comfortably
        min_relative_difference=0.5,
    )
    platform = CrowdPlatform({"naive": pool}, rng, gold=gold)
    values = rng.uniform(0.0, 300.0, size=n_items)

    table = TableResult(
        table_id="robustness-fatigue",
        title=(
            f"worker fatigue vs continuous gold probing "
            f"(pool={pool_size}, fatigue_rate={fatigue_rate:g})"
        ),
        headers=["batch", "active workers", "banned so far", "batch accuracy"],
    )
    for batch_idx in range(n_batches):
        pairs = [
            (int(a), int(b))
            for a, b in zip(
                rng.integers(0, n_items, size=25), rng.integers(0, n_items, size=25)
            )
            if a != b and values[a] != values[b]
        ]
        tasks = [
            ComparisonTask(
                task_id=k,
                first=a,
                second=b,
                value_first=float(values[a]),
                value_second=float(values[b]),
                required_judgments=judgments_per_task,
            )
            for k, (a, b) in enumerate(pairs)
        ]
        report = platform.submit_batch("naive", tasks)
        truth = [values[a] > values[b] for a, b in pairs]
        accuracy = float(np.mean([x == t for x, t in zip(report.answers, truth)]))
        banned = sum(1 for w in pool.workers if w.banned)
        table.add_row(
            [batch_idx + 1, len(pool.active_members), banned, accuracy]
        )
    table.notes.append(
        "expected: bans accumulate as fatigue sets in, keeping the kept "
        "judgments' accuracy from collapsing with the workers"
    )
    return table


def _fault_trial(
    rng: np.random.Generator,
    *,
    n: int,
    u_n: int,
    u_e: int,
    plan: FaultPlan,
    retry: RetryPolicy,
) -> dict[str, Any]:
    """One independent (abandon rate, trial) run of the two-phase job."""
    instance = planted_instance(
        n=n, u_n=u_n, u_e=u_e, delta_n=1.0, delta_e=0.25, rng=rng
    )
    pools = {
        "naive": WorkerPool.homogeneous(
            "naive", ThresholdWorkerModel(delta=1.0), size=12
        ),
        "expert": WorkerPool.homogeneous(
            "expert",
            ThresholdWorkerModel(delta=0.25, is_expert=True),
            size=4,
            cost_per_judgment=10.0,
            id_offset=1000,
        ),
    }
    platform = CrowdPlatform(
        pools, rng, faults=plan if plan.active else None, retry=retry
    )
    job = CrowdMaxJob(
        instance,
        u_n=u_n,
        phase1=JobPhaseConfig("naive"),
        phase2=JobPhaseConfig("expert"),
    )
    result = job.execute(platform, rng)
    return {
        "rank": instance.rank_of(result.winner),
        "cost": result.total_cost,
        "steps": result.physical_steps,
        "faults": platform.faults_injected_total,
        "retries": platform.retries_total,
        "degraded": platform.tasks_degraded_total,
    }


def run_fault_sweep(
    rng: np.random.Generator,
    n: int = 120,
    u_n: int = 4,
    u_e: int = 2,
    abandon_rates: tuple[float, ...] = (0.0, 0.1, 0.25, 0.4),
    trials: int = 3,
    base_plan: FaultPlan | None = None,
    jobs: int = 1,
) -> TableResult:
    """Accuracy and cost of the two-phase job vs the abandonment rate.

    Each trial runs a full :class:`~repro.service.CrowdMaxJob` through a
    platform whose :class:`~repro.platform.faults.FaultPlan` abandons
    the given fraction of assignments (on top of ``base_plan``'s other
    fault rates, if provided — the CLI's ``--fault-plan``), with a
    bounded-retry :class:`~repro.platform.faults.RetryPolicy`.  Degraded
    tasks and injected faults are read off the platform's aggregate
    counters.

    The (rate, trial) grid executes on ``jobs`` processes with per-run
    spawned seeds — bit-identical rows for any ``jobs``; isolated run
    failures become table notes instead of killing the sweep.
    """
    base = base_plan if base_plan is not None else FaultPlan.none()
    retry = RetryPolicy(max_attempts=8, backoff_base=1.0, backoff_factor=2.0)
    table = TableResult(
        table_id="robustness-faults",
        title=(
            f"two-phase job under task abandonment "
            f"(n={n}, u_n={u_n}, base plan: {base.describe()})"
        ),
        headers=[
            "abandon rate",
            "rank (avg)",
            "cost (avg)",
            "physical steps (avg)",
            "faults injected (avg)",
            "retries (avg)",
            "tasks degraded (avg)",
        ],
    )
    grid: list[tuple] = []
    for rate in abandon_rates:
        plan = FaultPlan(
            abandon_rate=rate,
            straggle_rate=base.straggle_rate,
            straggle_steps=base.straggle_steps,
            offline_rate=base.offline_rate,
            offline_steps=base.offline_steps,
            malformed_rate=base.malformed_rate,
        )
        for trial in range(trials):
            grid.append((rate, plan, trial))
    seeds = spawn_run_seeds(rng, len(grid))
    specs = [
        RunSpec(
            index=i,
            fn=_fault_trial,
            seed=seed,
            params={"n": n, "u_n": u_n, "u_e": u_e, "plan": plan, "retry": retry},
            label=f"faults[rate={rate:g},trial={trial}]",
        )
        for i, ((rate, plan, trial), seed) in enumerate(zip(grid, seeds))
    ]
    results = execute_runs(specs, jobs=jobs)

    failures = [run for run in results if not run.ok]
    by_rate: dict[float, list[dict]] = {rate: [] for rate in abandon_rates}
    for (rate, _plan, _trial), run in zip(grid, results):
        if run.ok:
            by_rate[rate].append(run.value)
    for rate in abandon_rates:
        rows = by_rate[rate]
        if rows:
            table.add_row(
                [
                    rate,
                    float(np.mean([r["rank"] for r in rows])),
                    float(np.mean([r["cost"] for r in rows])),
                    float(np.mean([r["steps"] for r in rows])),
                    float(np.mean([r["faults"] for r in rows])),
                    float(np.mean([r["retries"] for r in rows])),
                    float(np.mean([r["degraded"] for r in rows])),
                ]
            )
        else:
            table.add_row([rate] + [float("nan")] * 6)
    table.notes.extend(failure_notes(failures))
    table.notes.append(
        "expected: cost and physical steps grow with the abandonment "
        "rate while the retry layer holds the returned rank steady; "
        "degraded tasks stay rare until the pool is badly starved"
    )
    return table
