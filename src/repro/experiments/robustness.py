"""Robustness experiments: relaxing the paper's analysis assumptions.

Two sweeps probing assumptions the paper makes "for the sake of
presentation":

* **Residual-error sweep** — §4, Remark: "we assume that both residual
  errors eps_n and eps_e are equal to 0.  Our results can be extended
  to any value less than 1/2."  The sweep runs Algorithm 1 with
  ``eps_n = eps_e = eps`` over a grid of eps values and reports the
  returned rank and the survival rate of the true maximum: graceful
  degradation up to eps well below 1/2, collapse as eps approaches it.
* **Fatigue sweep** — workers degrade during the job
  (:mod:`repro.workers.drift`); with continuous gold probing the
  platform bans workers *mid-job* once fatigue pushes them under the
  bar, and the job still completes with the remaining workforce.
"""

from __future__ import annotations

import numpy as np

from ..core.generators import planted_instance
from ..core.maxfinder import ExpertAwareMaxFinder
from ..platform.gold import GoldPolicy
from ..platform.job import ComparisonTask
from ..platform.platform import CrowdPlatform
from ..platform.workforce import WorkerPool
from ..workers.aggregation import MajorityOfKModel
from ..workers.drift import FatigueWorkerModel
from ..workers.expert import WorkerClass, make_worker_classes
from ..workers.threshold import ThresholdWorkerModel
from .base import TableResult

__all__ = ["run_epsilon_robustness", "run_fatigue_experiment"]


def run_epsilon_robustness(
    rng: np.random.Generator,
    n: int = 500,
    u_n: int = 8,
    u_e: int = 3,
    epsilons: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45),
    trials: int = 5,
) -> TableResult:
    """Algorithm 1 accuracy as the residual error eps grows."""
    table = TableResult(
        table_id="robustness-eps",
        title=f"Algorithm 1 under residual error eps (n={n}, u_n={u_n})",
        headers=[
            "eps",
            "rank (avg)",
            "max survived",
            "rank w/ 5-vote majority (avg)",
            "max survived w/ majority",
        ],
    )
    for eps in epsilons:
        naive, expert = make_worker_classes(
            delta_n=1.0, delta_e=0.25, eps_n=eps, eps_e=eps
        )
        # Redundancy arm: each naive comparison is the majority of 5
        # independent judgments, amplifying 1 - eps back toward 1 above
        # the threshold (the mechanism behind the paper's "extends to
        # any value less than 1/2" — at 5x the phase-1 cost).
        amplified = WorkerClass(
            name="naive-x5",
            model=MajorityOfKModel(naive.model, k=5, is_expert=False),
            cost_per_comparison=5 * naive.cost_per_comparison,
        )
        plain_finder = ExpertAwareMaxFinder(naive=naive, expert=expert, u_n=u_n)
        amplified_finder = ExpertAwareMaxFinder(
            naive=amplified, expert=expert, u_n=u_n
        )
        ranks: list[int] = []
        amp_ranks: list[int] = []
        survived = 0
        amp_survived = 0
        for _ in range(trials):
            instance = planted_instance(
                n=n, u_n=u_n, u_e=u_e, delta_n=1.0, delta_e=0.25, rng=rng
            )
            result = plain_finder.run(instance, rng)
            ranks.append(instance.rank_of(result.winner))
            survived += int(instance.max_index in result.survivors)
            amp_result = amplified_finder.run(instance, rng)
            amp_ranks.append(instance.rank_of(amp_result.winner))
            amp_survived += int(instance.max_index in amp_result.survivors)
        table.add_row(
            [
                eps,
                float(np.mean(ranks)),
                f"{survived}/{trials}",
                float(np.mean(amp_ranks)),
                f"{amp_survived}/{trials}",
            ]
        )
    table.notes.append(
        "expected: the plain algorithm degrades as eps grows; majority "
        "amplification restores the eps ~ 0 behaviour (at 5x phase-1 "
        "cost) for any eps bounded away from 1/2 — the paper's claimed "
        "extension, made concrete"
    )
    return table


def run_fatigue_experiment(
    rng: np.random.Generator,
    n_items: int = 30,
    pool_size: int = 12,
    fatigue_rate: float = 0.02,
    judgments_per_task: int = 3,
    n_batches: int = 6,
) -> TableResult:
    """Mid-job bans of fatiguing workers under continuous gold probing."""
    base = ThresholdWorkerModel(delta=1.0)
    roster = [
        FatigueWorkerModel(base, fatigue_rate=fatigue_rate, max_extra_error=0.45)
        for _ in range(pool_size)
    ]
    pool = WorkerPool.from_models("naive", list(roster), cost_per_judgment=1.0)
    gold = GoldPolicy.from_values(
        rng.uniform(0.0, 300.0, size=30),
        rng,
        n_pairs=20,
        gold_fraction=0.25,
        min_gold_answers=4,
        ban_threshold=0.7,
        # easy gold: honest-but-rested workers pass comfortably
        min_relative_difference=0.5,
    )
    platform = CrowdPlatform({"naive": pool}, rng, gold=gold)
    values = rng.uniform(0.0, 300.0, size=n_items)

    table = TableResult(
        table_id="robustness-fatigue",
        title=(
            f"worker fatigue vs continuous gold probing "
            f"(pool={pool_size}, fatigue_rate={fatigue_rate:g})"
        ),
        headers=["batch", "active workers", "banned so far", "batch accuracy"],
    )
    for batch_idx in range(n_batches):
        pairs = [
            (int(a), int(b))
            for a, b in zip(
                rng.integers(0, n_items, size=25), rng.integers(0, n_items, size=25)
            )
            if a != b and values[a] != values[b]
        ]
        tasks = [
            ComparisonTask(
                task_id=k,
                first=a,
                second=b,
                value_first=float(values[a]),
                value_second=float(values[b]),
                required_judgments=judgments_per_task,
            )
            for k, (a, b) in enumerate(pairs)
        ]
        report = platform.submit_batch("naive", tasks)
        truth = [values[a] > values[b] for a, b in pairs]
        accuracy = float(np.mean([x == t for x, t in zip(report.answers, truth)]))
        banned = sum(1 for w in pool.workers if w.banned)
        table.add_row(
            [batch_idx + 1, len(pool.active_members), banned, accuracy]
        )
    table.notes.append(
        "expected: bans accumulate as fatigue sets in, keeping the kept "
        "judgments' accuracy from collapsing with the workers"
    )
    return table
