"""JSON persistence for experiment results.

Long sweeps are expensive; this module round-trips
:class:`~repro.experiments.base.FigureResult` and
:class:`~repro.experiments.base.TableResult` through JSON so runs can
be archived, diffed against the paper, and re-rendered without
re-simulating.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from typing import Callable

from .base import FigureResult, TableResult

__all__ = [
    "save_result",
    "load_result",
    "write_atomic",
    "write_text_atomic",
    "write_json_atomic",
]


def write_atomic(path: str | Path, write: Callable[[Path], None]) -> Path:
    """Produce ``path`` atomically: ``write`` fills a temp file, which
    is then renamed into place.

    The one tmp-file + ``os.replace`` implementation every artifact
    writer shares (text, JSON, benchmark CSVs): concurrent writers —
    pytest-xdist benchmark shards, parallel CI jobs — each land a
    complete file, and readers can never observe a partial write.
    ``write`` receives the private temp path (same directory, so the
    rename stays on one filesystem); on any failure the temp file is
    removed and nothing is published.  Parent directories are created.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        write(tmp)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def write_text_atomic(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (see :func:`write_atomic`)."""
    return write_atomic(path, lambda tmp: tmp.write_text(text, encoding="utf-8"))


def write_json_atomic(path: str | Path, payload: object) -> Path:
    """Serialise ``payload`` as pretty JSON and write it atomically."""
    return write_text_atomic(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

_FIGURE_KIND = "figure"
_TABLE_KIND = "table"


def save_result(result: FigureResult | TableResult, path: str | Path) -> Path:
    """Serialise a result to JSON (parent directories are created)."""
    if isinstance(result, FigureResult):
        payload = {
            "kind": _FIGURE_KIND,
            "figure_id": result.figure_id,
            "title": result.title,
            "x_label": result.x_label,
            "x_values": result.x_values,
            "series": result.series,
            "notes": result.notes,
        }
    elif isinstance(result, TableResult):
        payload = {
            "kind": _TABLE_KIND,
            "table_id": result.table_id,
            "title": result.title,
            "headers": result.headers,
            "rows": result.rows,
            "notes": result.notes,
        }
    else:
        raise TypeError(f"cannot serialise {type(result).__name__}")
    return write_json_atomic(path, payload)


def load_result(path: str | Path) -> FigureResult | TableResult:
    """Load a result saved by :func:`save_result`."""
    payload = json.loads(Path(path).read_text())
    kind = payload.get("kind")
    if kind == _FIGURE_KIND:
        figure = FigureResult(
            figure_id=payload["figure_id"],
            title=payload["title"],
            x_label=payload["x_label"],
            x_values=payload["x_values"],
            notes=list(payload.get("notes", [])),
        )
        for name, values in payload["series"].items():
            figure.add_series(name, values)
        return figure
    if kind == _TABLE_KIND:
        table = TableResult(
            table_id=payload["table_id"],
            title=payload["title"],
            headers=list(payload["headers"]),
            notes=list(payload.get("notes", [])),
        )
        for row in payload["rows"]:
            table.add_row(row)
        return table
    raise ValueError(f"{path} does not contain a serialised result (kind={kind!r})")
