"""JSON persistence for experiment results.

Long sweeps are expensive; this module round-trips
:class:`~repro.experiments.base.FigureResult` and
:class:`~repro.experiments.base.TableResult` through JSON so runs can
be archived, diffed against the paper, and re-rendered without
re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path

from .artifacts import write_atomic, write_json_atomic, write_text_atomic
from .base import FigureResult, TableResult

__all__ = [
    "save_result",
    "load_result",
    # Re-exported from :mod:`repro.experiments.artifacts` (the writers
    # were hoisted there so non-experiment layers can share them);
    # import from ``artifacts`` in new code.
    "write_atomic",
    "write_text_atomic",
    "write_json_atomic",
]

_FIGURE_KIND = "figure"
_TABLE_KIND = "table"


def save_result(result: FigureResult | TableResult, path: str | Path) -> Path:
    """Serialise a result to JSON (parent directories are created)."""
    if isinstance(result, FigureResult):
        payload = {
            "kind": _FIGURE_KIND,
            "figure_id": result.figure_id,
            "title": result.title,
            "x_label": result.x_label,
            "x_values": result.x_values,
            "series": result.series,
            "notes": result.notes,
        }
    elif isinstance(result, TableResult):
        payload = {
            "kind": _TABLE_KIND,
            "table_id": result.table_id,
            "title": result.title,
            "headers": result.headers,
            "rows": result.rows,
            "notes": result.notes,
        }
    else:
        raise TypeError(f"cannot serialise {type(result).__name__}")
    return write_json_atomic(path, payload)


def load_result(path: str | Path) -> FigureResult | TableResult:
    """Load a result saved by :func:`save_result`."""
    payload = json.loads(Path(path).read_text())
    kind = payload.get("kind")
    if kind == _FIGURE_KIND:
        figure = FigureResult(
            figure_id=payload["figure_id"],
            title=payload["title"],
            x_label=payload["x_label"],
            x_values=payload["x_values"],
            notes=list(payload.get("notes", [])),
        )
        for name, values in payload["series"].items():
            figure.add_series(name, values)
        return figure
    if kind == _TABLE_KIND:
        table = TableResult(
            table_id=payload["table_id"],
            title=payload["title"],
            headers=list(payload["headers"]),
            notes=list(payload.get("notes", [])),
        )
        for row in payload["rows"]:
            table.add_row(row)
        return table
    raise ValueError(f"{path} does not contain a serialised result (kind={kind!r})")
