"""Scheduler throughput benchmark: N jobs shared vs. N jobs isolated.

The multi-job scheduler's pitch is economic: a host system answering
many queries over shared pools should settle more jobs per second and
— with the cross-job memo cache — buy strictly fewer judgments than
the same jobs executed in isolation.  This module measures both claims
on one seeded workload and packages the numbers as a JSON payload
conventionally stored at ``results/BENCH_scheduler.json``:

* **isolated** — every job on its own private platform (the status
  quo before :mod:`repro.scheduler`), with the same spawned seeds the
  scheduler would assign;
* **scheduled_serial** — the cooperative loop over shared pools with
  batch fusion *off* (the ``fusion=off`` escape hatch): every parked
  request settled one platform call at a time;
* **scheduled_fused** — the same loop with fused tick settlement:
  all fast-path-eligible requests of a tick settled in one platform
  pass per (pool, worker-model) group.  Both scheduled arms are
  verified *bit-identical* to the isolated baseline before any timing
  is reported (the determinism contract of ``docs/SCHEDULER.md``);
* **scheduled_cached** — fused settlement plus the cross-job memo
  cache, reusing judgments across jobs (strictly cheaper, so not
  expected to be bit-identical); reports hit rate and judgments/money
  saved.

Entry points: the ``repro-experiments serve-sim`` CLI subcommand and
the ``benchmarks/test_bench_scheduler.py`` harness, both writing the
artifact atomically via
:func:`~repro.experiments.artifacts.write_json_atomic`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..platform.platform import CrowdPlatform
from ..platform.workforce import WorkerPool
from ..scheduler import CrowdScheduler
from ..jobs import CrowdMaxJob, CrowdTopKJob, JobPhaseConfig
from ..workers.threshold import ThresholdWorkerModel
from .base import TableResult
from .artifacts import write_json_atomic

__all__ = [
    "SCHEDULER_BENCH_SCHEMA",
    "SchedulerWorkload",
    "default_workload",
    "run_scheduler_bench",
    "scheduler_bench_table",
    "write_scheduler_bench_json",
]

#: Schema tag stamped into every BENCH_scheduler.json payload.
SCHEDULER_BENCH_SCHEMA = "repro.bench_scheduler/v2"

#: Spawn-key salt separating catalog generation from job seeding, so a
#: workload's instances never correlate with its scheduler streams.
_CATALOG_STREAM = 0xCA7A


class SchedulerWorkload:
    """A reproducible multi-job workload over a few shared catalogs.

    ``catalogs`` distinct planted instances are generated once (from
    ``seed``), and ``n_jobs`` jobs cycle over them — every fourth job a
    TOP-3 query, the rest MAX — so repeated-catalog traffic exercises
    the cross-job cache exactly as the CrowdDB scenario would.
    ``pools()`` and ``jobs()`` build *fresh* objects per call, so the
    isolated / cache-off / cache-on arms never share mutable state.
    """

    def __init__(
        self,
        seed: int = 2015,
        n_jobs: int = 8,
        n: int = 150,
        u_n: int = 5,
        catalogs: int = 2,
    ):
        if n_jobs < 1:
            raise ValueError("n_jobs must be at least 1")
        if catalogs < 1:
            raise ValueError("catalogs must be at least 1")
        from ..core.generators import planted_instance

        self.seed = seed
        self.n_jobs = n_jobs
        self.n = n
        self.u_n = u_n
        self.catalogs = catalogs
        rng = np.random.default_rng(np.random.SeedSequence([seed, _CATALOG_STREAM]))
        self.instances = [
            planted_instance(
                n=n, u_n=u_n, u_e=2, delta_n=1.0, delta_e=0.25, rng=rng
            )
            for _ in range(catalogs)
        ]

    def pools(self) -> dict[str, WorkerPool]:
        """Fresh shared pools: a cheap crowd and a small expert bench."""
        return {
            "crowd": WorkerPool.homogeneous(
                "crowd", ThresholdWorkerModel(delta=1.0), size=20, cost_per_judgment=1.0
            ),
            "experts": WorkerPool.homogeneous(
                "experts",
                ThresholdWorkerModel(delta=0.25, is_expert=True),
                size=3,
                cost_per_judgment=20.0,
            ),
        }

    def jobs(self) -> list[CrowdMaxJob]:
        """Fresh job objects, cycling catalogs; every 4th is TOP-3."""
        out: list[CrowdMaxJob] = []
        for k in range(self.n_jobs):
            instance = self.instances[k % self.catalogs]
            phase1 = JobPhaseConfig(pool="crowd")
            phase2 = JobPhaseConfig(pool="experts")
            if k % 4 == 3:
                out.append(
                    CrowdTopKJob(instance, u_n=self.u_n, k=3, phase1=phase1, phase2=phase2)
                )
            else:
                out.append(
                    CrowdMaxJob(instance, u_n=self.u_n, phase1=phase1, phase2=phase2)
                )
        return out


def default_workload(seed: int = 2015, n_jobs: int = 8) -> SchedulerWorkload:
    """The workload the CLI and CI smoke run (8 jobs, 2 catalogs)."""
    return SchedulerWorkload(seed=seed, n_jobs=n_jobs)


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _job_fingerprints(per_job: dict[int, tuple[Any, ...]]) -> list[tuple[Any, ...]]:
    return [per_job[index] for index in sorted(per_job)]


def _run_isolated(workload: SchedulerWorkload) -> dict[int, tuple[Any, ...]]:
    """The baseline: each job alone, seeded as the scheduler would.

    Replays the scheduler's admission-order spawn discipline (one
    root child per job, split into algorithm + platform streams), so
    cache-off scheduling must reproduce these exact results.
    """
    root = np.random.SeedSequence(workload.seed)
    per_job: dict[int, tuple[Any, ...]] = {}
    for index, job in enumerate(workload.jobs()):
        job_seed, platform_seed = root.spawn(1)[0].spawn(2)
        platform = CrowdPlatform(
            workload.pools(), rng=np.random.default_rng(platform_seed)
        )
        result = job.execute(platform, np.random.default_rng(job_seed))
        per_job[index] = (
            tuple(result.answer),
            round(platform.ledger.total_cost, 9),
            platform.ledger.operations(),
        )
    return per_job


def _run_scheduled(
    workload: SchedulerWorkload,
    cache: bool,
    quantum: int | None,
    fusion: bool = True,
) -> tuple[dict[int, tuple[Any, ...]], CrowdScheduler]:
    scheduler = CrowdScheduler(
        workload.pools(),
        root_seed=workload.seed,
        cache=cache,
        quantum=quantum,
        fusion=fusion,
    )
    for job in workload.jobs():
        scheduler.submit(job)
    outcomes = scheduler.run()
    per_job: dict[int, tuple[Any, ...]] = {}
    for outcome in outcomes:
        assert outcome.result is not None, outcome.error
        platform = outcome.ticket.platform
        assert platform is not None
        per_job[outcome.ticket.index] = (
            tuple(outcome.result.answer),
            round(platform.ledger.total_cost, 9),
            platform.ledger.operations(),
        )
    return per_job, scheduler


def run_scheduler_bench(
    seed: int = 2015,
    n_jobs: int = 8,
    quantum: int | None = None,
    workload: SchedulerWorkload | None = None,
) -> dict[str, Any]:
    """Run all four arms and return the BENCH_scheduler payload.

    The default ``quantum=None`` admits every parked request each tick
    — the regime where fusion has material to work with; a small
    quantum throttles admission to one request per pool per tick and
    degrades the fused arm to serial behaviour.
    """
    if workload is None:
        workload = default_workload(seed=seed, n_jobs=n_jobs)

    isolated_s, isolated = _timed(lambda: _run_isolated(workload))
    serial_s, (serial, _) = _timed(
        lambda: _run_scheduled(workload, cache=False, quantum=quantum, fusion=False)
    )
    fused_s, (fused, _) = _timed(
        lambda: _run_scheduled(workload, cache=False, quantum=quantum, fusion=True)
    )
    cached_s, (cached, cached_scheduler) = _timed(
        lambda: _run_scheduled(workload, cache=True, quantum=quantum, fusion=True)
    )

    baseline = _job_fingerprints(isolated)
    serial_identical = baseline == _job_fingerprints(serial)
    fused_identical = baseline == _job_fingerprints(fused)
    judgments_isolated = sum(ops for _, _, ops in isolated.values())
    judgments_cached = sum(ops for _, _, ops in cached.values())
    money_isolated = sum(cost for _, cost, _ in isolated.values())
    money_cached = sum(cost for _, cost, _ in cached.values())
    memo = cached_scheduler.cache
    assert memo is not None

    # Provenance stamp on the artifact; comparisons read the measured
    # fields, never this, so the payload stays seed-comparable.
    generated_unix = round(time.time(), 3)  # repro-lint: disable=DET002 -- provenance stamp only
    n_settled = len(cached)

    def _rate(wall_s: float) -> float | None:
        return round(n_settled / wall_s, 3) if wall_s > 0 else None

    return {
        "schema": SCHEDULER_BENCH_SCHEMA,
        "seed": workload.seed,
        "generated_unix": generated_unix,
        "workload": {
            "n_jobs": workload.n_jobs,
            "n": workload.n,
            "u_n": workload.u_n,
            "catalogs": workload.catalogs,
            "quantum": quantum,
        },
        "isolated": {
            "wall_s": round(isolated_s, 6),
            "jobs_per_sec": _rate(isolated_s),
            "judgments": judgments_isolated,
            "money": round(money_isolated, 2),
        },
        "scheduled_serial": {
            "wall_s": round(serial_s, 6),
            "jobs_per_sec": _rate(serial_s),
            "identical_to_isolated": serial_identical,
        },
        "scheduled_fused": {
            "wall_s": round(fused_s, 6),
            "jobs_per_sec": _rate(fused_s),
            "identical_to_isolated": fused_identical,
            "speedup_vs_isolated": (
                round(isolated_s / fused_s, 3) if fused_s > 0 else None
            ),
        },
        "scheduled_cached": {
            "wall_s": round(cached_s, 6),
            "jobs_per_sec": _rate(cached_s),
            "judgments": judgments_cached,
            "money": round(money_cached, 2),
            "cache_hits": memo.hits,
            "cache_misses": memo.misses,
            "cache_hit_rate": round(memo.hit_rate, 4),
            "judgments_saved": judgments_isolated - judgments_cached,
            "money_saved": round(money_isolated - money_cached, 2),
        },
    }


def scheduler_bench_table(payload: dict[str, Any]) -> TableResult:
    """Render a BENCH_scheduler payload as the table the CLI prints."""
    workload = payload["workload"]
    table = TableResult(
        table_id="bench-scheduler",
        title=(
            f"scheduler throughput: {workload['n_jobs']} jobs over "
            f"{workload['catalogs']} catalogs (n={workload['n']})"
        ),
        headers=["arm", "wall (s)", "jobs/s", "judgments", "money", "notes"],
    )
    isolated = payload["isolated"]
    serial = payload["scheduled_serial"]
    fused = payload["scheduled_fused"]
    cached = payload["scheduled_cached"]

    def _identity(arm: dict[str, Any]) -> str:
        return (
            "bit-identical to isolated"
            if arm["identical_to_isolated"]
            else "NOT identical to isolated"
        )

    table.add_row(
        [
            "isolated",
            isolated["wall_s"],
            isolated["jobs_per_sec"],
            isolated["judgments"],
            isolated["money"],
            "one private platform per job",
        ]
    )
    table.add_row(
        [
            "scheduled (serial)",
            serial["wall_s"],
            serial["jobs_per_sec"],
            isolated["judgments"],
            isolated["money"],
            f"fusion off; {_identity(serial)}",
        ]
    )
    table.add_row(
        [
            "scheduled (fused)",
            fused["wall_s"],
            fused["jobs_per_sec"],
            isolated["judgments"],
            isolated["money"],
            (
                f"{fused['speedup_vs_isolated']}x vs isolated; "
                f"{_identity(fused)}"
            ),
        ]
    )
    table.add_row(
        [
            "scheduled (fused+cache)",
            cached["wall_s"],
            cached["jobs_per_sec"],
            cached["judgments"],
            cached["money"],
            (
                f"hit rate {cached['cache_hit_rate']:.1%}, saved "
                f"{cached['judgments_saved']} judgments / "
                f"{cached['money_saved']} money"
            ),
        ]
    )
    table.notes.append(
        "cache-off scheduling (serial and fused) is verified "
        "bit-identical to isolated execution before timings are "
        "reported; see docs/SCHEDULER.md"
    )
    return table


def write_scheduler_bench_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Persist the artifact atomically (safe under concurrent shards)."""
    return write_json_atomic(path, payload)
