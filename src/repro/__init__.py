"""repro — reproduction of "The Importance of Being Expert: Efficient
Max-Finding in Crowdsourcing" (Anagnostopoulos et al., SIGMOD 2015).

The package implements the paper's crowdsourcing computation model
(threshold error model with experts), its two-phase expert-aware
max-finding algorithm with matching upper/lower bounds, a crowdsourcing
platform simulator standing in for CrowdFlower, the DOTS / CARS /
search-results datasets, and the full experiment harness reproducing
every table and figure of the evaluation section.

Quickstart::

    import numpy as np
    from repro import find_max, make_worker_classes, planted_instance

    rng = np.random.default_rng(0)
    instance = planted_instance(
        n=1000, u_n=10, u_e=5, delta_n=10.0, delta_e=2.0, rng=rng
    )
    naive, expert = make_worker_classes(
        delta_n=10.0, delta_e=2.0, cost_n=1.0, cost_e=20.0
    )
    result = find_max(instance, naive, expert, u_n=10, rng=rng)
    print(instance.rank_of(result.winner), result.cost)
"""

from .core import (
    ComparisonOracle,
    ExpertAwareMaxFinder,
    FilterResult,
    MaxFindResult,
    ProblemInstance,
    adversarial_instance,
    estimate_perr,
    estimate_u_n,
    filter_candidates,
    find_max,
    planted_instance,
    randomized_maxfind,
    two_maxfind,
    uniform_instance,
)
from .parallel import (
    RunError,
    RunResult,
    RunSpec,
    execute_runs,
    spawn_run_seeds,
)
from .platform import FaultPlan, RetryPolicy
from .jobs import (
    BudgetExceededError,
    CrowdJobResult,
    CrowdMaxJob,
    CrowdTopKJob,
    JobPhaseConfig,
    ResiliencePolicy,
)
from .scheduler import (
    ComparisonMemoCache,
    CrowdScheduler,
    JobCancelledError,
    JobOutcome,
    JobTicket,
    SchedulerSaturatedError,
)
from .telemetry import (
    JsonlSink,
    MetricsRegistry,
    Tracer,
    set_active_tracer,
    use_tracer,
)
from .workers import (
    AdversarialWorkerModel,
    MajorityOfKModel,
    ThresholdWorkerModel,
    ThurstoneWorkerModel,
    WorkerClass,
    make_worker_classes,
)

__version__ = "1.0.0"

__all__ = [
    "AdversarialWorkerModel",
    "BudgetExceededError",
    "ComparisonMemoCache",
    "ComparisonOracle",
    "CrowdJobResult",
    "CrowdMaxJob",
    "CrowdScheduler",
    "CrowdTopKJob",
    "ExpertAwareMaxFinder",
    "FaultPlan",
    "JobCancelledError",
    "JobOutcome",
    "JobPhaseConfig",
    "JobTicket",
    "JsonlSink",
    "FilterResult",
    "MajorityOfKModel",
    "MaxFindResult",
    "MetricsRegistry",
    "ProblemInstance",
    "ResiliencePolicy",
    "RetryPolicy",
    "SchedulerSaturatedError",
    "RunError",
    "RunResult",
    "RunSpec",
    "ThresholdWorkerModel",
    "ThurstoneWorkerModel",
    "Tracer",
    "WorkerClass",
    "__version__",
    "adversarial_instance",
    "estimate_perr",
    "estimate_u_n",
    "execute_runs",
    "filter_candidates",
    "find_max",
    "make_worker_classes",
    "planted_instance",
    "randomized_maxfind",
    "set_active_tracer",
    "spawn_run_seeds",
    "two_maxfind",
    "uniform_instance",
    "use_tracer",
]
