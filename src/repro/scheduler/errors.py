"""Typed errors and warnings raised by the multi-job scheduler."""

from __future__ import annotations

__all__ = [
    "JobCancelledError",
    "SchedulerSaturatedError",
    "SchedulerThreadLeakWarning",
]


class JobCancelledError(RuntimeError):
    """A job was cancelled before it could settle.

    Cancellation is cooperative: :meth:`JobTicket.cancel
    <repro.scheduler.engine.JobTicket.cancel>` only sets a flag, and
    the scheduler honours it at the job's next control point — before
    launch, or at a parked oracle call, where this error is thrown
    into the job instead of the batch answers.  The ticket settles
    with outcome status ``"cancelled"``; money already spent stays
    spent (the ledgers are authoritative).

    Attributes
    ----------
    job_index:
        Admission index of the cancelled job, or the service-layer job
        id when the job was cancelled while still queued (before any
        scheduler admitted it).
    """

    def __init__(self, job_index: int | str):
        super().__init__(f"job {job_index} was cancelled before settling")
        self.job_index = job_index


class SchedulerSaturatedError(RuntimeError):
    """The scheduler's bounded admission queue refused a submission.

    Backpressure is explicit: a host system that keeps submitting past
    ``max_pending`` gets this typed error *before* any seeds are
    spawned or money is reserved, so it can shed load or retry later
    without corrupting the determinism contract of the jobs already
    admitted.

    Attributes
    ----------
    capacity:
        The configured queue bound (``max_pending``).
    pending:
        Jobs already admitted and waiting when the submission arrived.
    """

    def __init__(self, capacity: int, pending: int):
        super().__init__(
            f"scheduler queue is saturated: {pending} jobs pending against a "
            f"bound of {capacity}; settle the current batch with run() or "
            "raise max_pending"
        )
        self.capacity = capacity
        self.pending = pending


class SchedulerThreadLeakWarning(UserWarning):
    """A job thread survived scheduler shutdown.

    Thread-fallback tickets (jobs without a ``steps()`` generator) are
    joined when :meth:`~repro.scheduler.engine.CrowdScheduler.run`
    unwinds; a parked one is woken with an error first.  A thread that
    still refuses to exit within the reap grace period is a resource
    leak the host should know about — it holds a tenant platform (and
    its ledgers) alive — so it is surfaced as this typed warning
    instead of being dropped silently.

    Attributes
    ----------
    job_indices:
        Admission indices of the jobs whose threads were leaked.
    """

    def __init__(self, job_indices: list[int]):
        super().__init__(
            f"scheduler shutdown leaked {len(job_indices)} job thread(s) "
            f"for jobs {job_indices}: woken with an error but still alive "
            "after the reap timeout"
        )
        self.job_indices = list(job_indices)
