"""Typed errors raised by the multi-job scheduler."""

from __future__ import annotations

__all__ = ["SchedulerSaturatedError"]


class SchedulerSaturatedError(RuntimeError):
    """The scheduler's bounded admission queue refused a submission.

    Backpressure is explicit: a host system that keeps submitting past
    ``max_pending`` gets this typed error *before* any seeds are
    spawned or money is reserved, so it can shed load or retry later
    without corrupting the determinism contract of the jobs already
    admitted.

    Attributes
    ----------
    capacity:
        The configured queue bound (``max_pending``).
    pending:
        Jobs already admitted and waiting when the submission arrived.
    """

    def __init__(self, capacity: int, pending: int):
        super().__init__(
            f"scheduler queue is saturated: {pending} jobs pending against a "
            f"bound of {capacity}; settle the current batch with run() or "
            "raise max_pending"
        )
        self.capacity = capacity
        self.pending = pending
