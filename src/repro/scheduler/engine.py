"""The deterministic multi-job scheduler.

Section 1 positions the paper's algorithm as a primitive for host
systems (CrowdDB and friends) that answer *many* crowd queries at once.
This module is that serving layer for the simulator: a
:class:`CrowdScheduler` admits many jobs — any class speaking the
uniform ``submit()/settle()`` protocol of :mod:`repro.service` — and
settles them cooperatively against **shared** worker pools, instead of
giving each query a private platform.

Execution model
---------------
Each admitted job runs on its own worker thread, but only ever *one at
a time*: the scheduler and the job threads hand control back and forth
in strict lock-step (a cooperative event loop with threads as
coroutines).  A job runs until its next platform round — every
``compare_batch`` a job issues is intercepted by its private
:class:`_TenantPlatform` view, posted to the scheduler, and the thread
blocks.  When every live job is parked, the scheduler runs one *tick*
of its virtual clock:

1. **Coalesce** — the parked comparison requests are grouped per pool
   (one ``batch_coalesced`` record each), the scheduler-level view of
   a consolidated submission.
2. **Admit** — fair-share admission per pool: requests are served in
   least-total-tasks-served-first order (ties to earliest admission),
   a per-tick ``quantum`` bounds how many tasks one pool grants, and
   the front request is always admitted so no job can starve.
3. **Serve** — each admitted request is resolved against the cross-job
   :class:`~repro.scheduler.cache.ComparisonMemoCache` first; only the
   misses are bought from the platform, with the *job's own* RNG
   stream, ledger, and fault plan.  Replies are delivered serially —
   the woken job runs until it parks again before the next reply goes
   out — so mutations of shared worker state (gold bans) happen in one
   deterministic order.

Determinism contract
--------------------
Per-job randomness is isolated: admission order assigns each job two
``SeedSequence.spawn`` children (algorithm stream + platform stream),
and tenant platforms never share a generator.  Hence:

* Same root seed + same submission order + same configuration ⇒
  bit-identical per-job results, costs, and settle order, every run.
* With the cache disabled, each job's *result and cost* are invariant
  to ``quantum`` and to which other jobs share the schedule (settle
  order may shift — a finer quantum spreads completion across more
  ticks — but what each job answers and pays does not).
* With the cache disabled and stateless pools (no gold bans mutating
  shared workers), each job's result is bit-identical to executing it
  alone on a private platform with the same seeds — the baseline the
  throughput benchmark exploits.
* Cache hits skip platform RNG draws, so cache-enabled runs trade
  bit-identity *to the isolated baseline* for strictly lower cost;
  they remain bit-reproducible run-to-run.

See ``docs/SCHEDULER.md`` for the full contract and worked examples.
"""

from __future__ import annotations

import threading
import warnings
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Literal

import numpy as np

from ..durability import (
    DurabilityPolicy,
    JobJournal,
    JournalMismatchError,
    JournalRecord,
    PersistentComparisonStore,
)
from ..platform.accounting import CostLedger
from ..platform.errors import CostCapError
from ..platform.faults import FaultPlan, RetryPolicy
from ..platform.gold import GoldPolicy
from ..platform.job import BatchReport, TaskReport
from ..platform.platform import CrowdPlatform
from ..platform.workforce import WorkerPool
from ..service import BudgetExceededError, CrowdJobResult, CrowdMaxJob
from ..telemetry import NULL_TRACER, Tracer, resolve_tracer
from .cache import ComparisonMemoCache, DurableComparisonCache, fingerprint_instance
from .errors import SchedulerSaturatedError

__all__ = ["JobTicket", "JobOutcome", "CrowdScheduler"]

#: How long the scheduler waits for job threads to park before
#: declaring the loop stalled.  Cooperative handoffs complete in
#: microseconds; this only fires if a job thread dies uncooperatively.
_STALL_TIMEOUT_S = 120.0


@dataclass
class _ChainedLedger(CostLedger):
    """A per-job ledger that also bills a shared per-tenant ledger.

    Gives each job private accounting (and a private ``hard_cap`` the
    job layer may tighten mid-run) while every charge *also* lands on
    the tenant's shared ledger — so a tenant-level cap is enforced
    jointly across all of that tenant's concurrent jobs.  The parent is
    checked before the private ledger records anything, keeping both
    ledgers' never-above-cap invariants intact.

    When :attr:`tape` is a list, every *successful* charge is also
    appended to it as ``(label, count, unit_cost)`` — the journal's
    charge tape.  Replaying the tape through :meth:`charge` in the
    recorded order rebuilds both ledgers with bit-identical float
    accumulation, which is what makes resumed cost totals exact.
    """

    parent: CostLedger | None = None
    tape: list[tuple[str, int, float]] | None = None

    def charge(self, label: str, count: int, unit_cost: float) -> None:
        amount = count * unit_cost
        if self.parent is not None and not self.parent.can_afford(amount):
            raise CostCapError(
                label=f"tenant:{label}",
                attempted=amount,
                cap=float(self.parent.hard_cap),  # type: ignore[arg-type]
                spent=self.parent.total_cost,
            )
        super().charge(label, count, unit_cost)
        if self.parent is not None:
            self.parent.charge(label, count, unit_cost)
        if self.tape is not None:
            self.tape.append((label, count, unit_cost))


def _capture_platform_state(platform: CrowdPlatform) -> dict[str, Any]:
    """Snapshot the platform facts a journaled batch must restore.

    Everything a later batch's outcome can depend on: the RNG stream
    position, the fast path's Philox key and judgment counter, and the
    step/fault counters the job meter diffs.  The judgment audit log is
    deliberately *not* captured (it can be huge and no decision reads
    it); a resumed run's log starts at the crash point.
    """
    return {
        "rng_state": platform.rng.bit_generator.state,
        "fast_key": platform._fast_key,
        "fast_seq": platform._fast_seq,
        "logical_steps": platform.logical_steps,
        "physical_steps_total": platform.physical_steps_total,
        "fast_batches_total": platform.fast_batches_total,
        "faults_injected_total": platform.faults_injected_total,
        "tasks_degraded_total": platform.tasks_degraded_total,
        "retries_total": platform.retries_total,
    }


def _restore_platform_state(platform: CrowdPlatform, state: dict[str, Any]) -> None:
    platform.rng.bit_generator.state = state["rng_state"]
    fast_key = state["fast_key"]
    platform._fast_key = None if fast_key is None else int(fast_key)
    platform._fast_seq = int(state["fast_seq"])
    platform.logical_steps = int(state["logical_steps"])
    platform.physical_steps_total = int(state["physical_steps_total"])
    platform.fast_batches_total = int(state["fast_batches_total"])
    platform.faults_injected_total = int(state["faults_injected_total"])
    platform.tasks_degraded_total = int(state["tasks_degraded_total"])
    platform.retries_total = int(state["retries_total"])


def _report_to_state(report: BatchReport) -> dict[str, Any]:
    """A :class:`BatchReport` as JSON-safe journal payload."""
    return {
        "answers": [bool(a) for a in report.answers],
        "physical_steps": report.physical_steps,
        "judgments_collected": report.judgments_collected,
        "judgments_discarded": report.judgments_discarded,
        "workers_banned": [int(w) for w in report.workers_banned],
        "task_reports": [asdict(t) for t in report.task_reports],
        "faults_injected": report.faults_injected,
        "judgments_malformed": report.judgments_malformed,
        "judgments_lost_late": report.judgments_lost_late,
        "retries": report.retries,
    }


def _report_from_state(state: dict[str, Any]) -> BatchReport:
    return BatchReport(
        answers=[bool(a) for a in state["answers"]],
        physical_steps=int(state["physical_steps"]),
        judgments_collected=int(state["judgments_collected"]),
        judgments_discarded=int(state["judgments_discarded"]),
        workers_banned=[int(w) for w in state["workers_banned"]],
        task_reports=[TaskReport(**t) for t in state["task_reports"]],
        faults_injected=int(state["faults_injected"]),
        judgments_malformed=int(state["judgments_malformed"]),
        judgments_lost_late=int(state["judgments_lost_late"]),
        retries=int(state["retries"]),
    )


@dataclass
class _CompareRequest:
    """One parked ``compare_batch`` call awaiting scheduler service."""

    pool_name: str
    indices_i: np.ndarray
    indices_j: np.ndarray
    values_i: np.ndarray
    values_j: np.ndarray
    judgments_per_task: int
    done: threading.Event = field(default_factory=threading.Event)
    answers: np.ndarray | None = None
    report: BatchReport | None = None
    error: BaseException | None = None

    @property
    def size(self) -> int:
        return len(self.indices_i)


class _TenantPlatform(CrowdPlatform):
    """One job's view of the shared platform.

    Shares the scheduler's :class:`WorkerPool` objects (and gold/fault
    policies) but owns a private RNG stream and a chained per-job
    ledger.  ``compare_batch`` does not execute — it parks the request
    with the scheduler and blocks until the reply arrives, which is the
    entire interleaving mechanism.
    """

    def __init__(self, ticket: "JobTicket", **kwargs: Any):
        super().__init__(**kwargs)
        self._ticket = ticket

    def compare_batch(
        self,
        pool_name: str,
        indices_i: np.ndarray,
        indices_j: np.ndarray,
        values_i: np.ndarray,
        values_j: np.ndarray,
        judgments_per_task: int = 1,
    ) -> tuple[np.ndarray, BatchReport]:
        self._pool(pool_name)  # fail fast on unknown pools, as the base does
        request = _CompareRequest(
            pool_name=pool_name,
            indices_i=np.asarray(indices_i),
            indices_j=np.asarray(indices_j),
            values_i=np.asarray(values_i),
            values_j=np.asarray(values_j),
            judgments_per_task=judgments_per_task,
        )
        return self._ticket._await_service(request)


class JobTicket:
    """Handle for one admitted job; resolves to a :class:`JobOutcome`.

    Returned by :meth:`CrowdScheduler.submit`.  The two seed children
    (algorithm + platform stream) are spawned at admission, so a
    ticket's randomness is fixed by its admission index alone.
    """

    def __init__(
        self,
        index: int,
        job: CrowdMaxJob,
        tenant: str,
        seed: np.random.SeedSequence,
        scheduler: "CrowdScheduler",
    ):
        self.index = index
        self.job = job
        self.tenant = tenant
        self.fingerprint = fingerprint_instance(job.instance)
        job_seed, platform_seed = seed.spawn(2)
        self.rng = np.random.default_rng(job_seed)
        self._platform_rng = np.random.default_rng(platform_seed)
        self.outcome: JobOutcome | None = None
        #: Tasks served per pool, the fair-share bookkeeping.
        self.served: dict[str, int] = {}
        self._scheduler = scheduler
        self.tracer: Tracer = NULL_TRACER
        self.platform: _TenantPlatform | None = None
        self._thread: threading.Thread | None = None
        #: "ready" | "running" | "blocked" | "done", guarded by the
        #: scheduler condition.
        self.state: str = "ready"
        self.request: _CompareRequest | None = None
        self._result: CrowdJobResult | None = None
        self._error: BaseException | None = None

    # ------------------------------------------------------------------
    # Job-thread side
    # ------------------------------------------------------------------
    def _await_service(
        self, request: _CompareRequest
    ) -> tuple[np.ndarray, BatchReport]:
        """Park this thread until the scheduler serves ``request``."""
        cond = self._scheduler._cond
        with cond:
            self.request = request
            self.state = "blocked"
            cond.notify_all()
        request.done.wait()
        if request.error is not None:
            raise request.error
        assert request.answers is not None and request.report is not None
        return request.answers, request.report

    def _run(self) -> None:
        """Thread body: settle the job, capture the outcome, park."""
        try:
            assert self.platform is not None
            self._result = self.job.submit(
                self.platform, self.rng, tracer=self.tracer
            ).settle()
        except BaseException as exc:  # repro-lint: disable=ERR003 -- outcome capture; re-raised on the ticket
            self._error = exc
        finally:
            cond = self._scheduler._cond
            with cond:
                self.state = "done"
                self.request = None
                cond.notify_all()


@dataclass(frozen=True)
class JobOutcome:
    """One settled job, in settle order.

    ``status`` is ``"ok"`` for a clean settle, ``"budget_exceeded"``
    when the job's (or its tenant's) mid-flight cap stopped it — the
    partial result rides on ``error.partial`` — and ``"failed"`` for
    any other exception.  Exactly one of ``result`` / ``error`` is set.
    """

    ticket: JobTicket
    settle_index: int
    status: Literal["ok", "budget_exceeded", "failed"]
    result: CrowdJobResult | None
    error: BaseException | None

    @property
    def job(self) -> CrowdMaxJob:
        return self.ticket.job

    @property
    def tenant(self) -> str:
        return self.ticket.tenant

    @property
    def cost(self) -> float:
        """Money this job spent (its private ledger total)."""
        assert self.ticket.platform is not None
        return self.ticket.platform.ledger.total_cost


class CrowdScheduler:
    """Deterministic cooperative multi-job scheduler over shared pools.

    Parameters
    ----------
    pools:
        The shared worker pools every admitted job settles against.
    root_seed:
        Root of the per-job ``SeedSequence.spawn`` tree; with the same
        root and submission order, every run is bit-identical.
    gold, faults, retry:
        Shared platform policies, applied to every tenant view (one
        quality-control regime for the whole marketplace).
    cache:
        ``True`` (default) builds a fresh
        :class:`~repro.scheduler.cache.ComparisonMemoCache`; pass an
        existing cache to share it across scheduler generations, or
        ``False`` to disable cross-job reuse (the isolated-equivalent
        mode the determinism contract is stated against).
    quantum:
        Fair-share bound: at most this many comparison tasks granted
        per pool per tick (the front request is always admitted, even
        when larger).  ``None`` grants everything runnable each tick.
    max_pending:
        Bounded admission queue; submissions past it raise
        :class:`~repro.scheduler.errors.SchedulerSaturatedError`.
    tenant_caps:
        Optional ``{tenant: hard_cap}`` budgets; all jobs of a tenant
        charge one shared ledger, so the cap binds them jointly.
    tracer:
        Telemetry destination.  Scheduler-level records
        (``job_admitted`` / ``scheduler_tick`` / ``batch_coalesced`` /
        ``cache_hit`` / ``job_settled``) are emitted live; each job's
        own records are buffered and replayed in admission order after
        the run, stamped with ``job_index`` (mirroring the parallel
        engine's shard replay).
    durability:
        Opt-in durable state (see :mod:`repro.durability` and
        ``docs/DURABILITY.md``).  With ``persist_cache``, the cross-job
        cache is backed by SQLite and warm-starts from previous runs;
        with ``journal``, every settled batch is journaled before it
        becomes observable anywhere else, and :meth:`run` transparently
        *resumes* when the policy's journal already holds records for
        the identical workload — journaled batches are replayed without
        touching the platform (zero re-spend), then execution continues
        live, bit-identical to an uninterrupted run.  Requires
        stateless pools for exactness: gold bans mutate shared workers
        and are not reconstructed (a warning says so).
    """

    def __init__(
        self,
        pools: dict[str, WorkerPool],
        root_seed: int | np.random.SeedSequence,
        gold: GoldPolicy | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        cache: ComparisonMemoCache | bool = True,
        quantum: int | None = 64,
        max_pending: int = 64,
        tenant_caps: dict[str, float] | None = None,
        tracer: Tracer | None = None,
        durability: DurabilityPolicy | None = None,
    ):
        if not pools:
            raise ValueError("the scheduler needs at least one worker pool")
        if quantum is not None and quantum < 1:
            raise ValueError("quantum must be at least 1 (or None for unlimited)")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.pools = dict(pools)
        self._seeds = (
            root_seed
            if isinstance(root_seed, np.random.SeedSequence)
            else np.random.SeedSequence(root_seed)
        )
        self.gold = gold
        self.faults = faults
        self.retry = retry
        self.tracer = resolve_tracer(tracer)
        self.durability = durability
        self._owns_cache = False
        if cache is True:
            if durability is not None and durability.persist_cache:
                self.cache: ComparisonMemoCache | None = DurableComparisonCache(
                    PersistentComparisonStore(durability.cache_path),
                    tracer=self.tracer,
                )
                self._owns_cache = True
            else:
                self.cache = ComparisonMemoCache(tracer=self.tracer)
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        if durability is not None and durability.journal and gold is not None:
            warnings.warn(
                "journaled durability with a gold policy: gold bans mutate "
                "shared worker state that journal replay does not "
                "reconstruct, so a resumed run is only exact when no worker "
                "was banned before the crash",
                UserWarning,
                stacklevel=2,
            )
        self.quantum = quantum
        self.max_pending = max_pending
        self._tenant_ledgers: dict[str, CostLedger] = {}
        self._tenant_caps = dict(tenant_caps or {})
        self._tickets: list[JobTicket] = []
        self._cond = threading.Condition()
        self._started = False
        self.ticks = 0
        self._journal: JobJournal | None = None
        self._replay: dict[int, deque[JournalRecord]] = {}
        self._journal_seq = 0
        self._settled_journaled: set[int] = set()
        #: Batches served from the journal (not the platform) this run.
        self.replayed_batches = 0
        #: Ledger operations re-applied from journal charge tapes.  The
        #: ledgers themselves cannot tell replayed charges from live
        #: ones (that is the point — bit-identical totals), so this is
        #: the counter that proves zero re-spend: judgments actually
        #: bought this run = ``ledger ops - replayed_operations``.
        self.replayed_operations = 0
        #: Money re-applied from journal charge tapes (same caveat).
        self.replayed_money = 0.0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, job: CrowdMaxJob, tenant: str = "default") -> JobTicket:
        """Admit one job; returns its ticket (outcome set after run()).

        Raises :class:`SchedulerSaturatedError` when the bounded queue
        is full and ``RuntimeError`` after :meth:`run` has started —
        the job set must be fixed before the clock starts so admission
        order (and therefore seeding) is unambiguous.
        """
        if self._started:
            raise RuntimeError("cannot submit after run() has started")
        if len(self._tickets) >= self.max_pending:
            raise SchedulerSaturatedError(
                capacity=self.max_pending, pending=len(self._tickets)
            )
        ticket = JobTicket(
            index=len(self._tickets),
            job=job,
            tenant=tenant,
            seed=self._seeds.spawn(1)[0],
            scheduler=self,
        )
        self._tickets.append(ticket)
        return ticket

    def tenant_ledger(self, tenant: str) -> CostLedger:
        """The shared ledger all of ``tenant``'s jobs charge."""
        ledger = self._tenant_ledgers.get(tenant)
        if ledger is None:
            ledger = CostLedger(hard_cap=self._tenant_caps.get(tenant))
            self._tenant_ledgers[tenant] = ledger
        return ledger

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self) -> list[JobOutcome]:
        """Settle every admitted job; returns outcomes in settle order.

        With a journaling :class:`~repro.durability.DurabilityPolicy`,
        recovers the journal first: an empty journal starts a fresh
        (recorded) run; an existing one must describe the identical
        workload (else :class:`JournalMismatchError`) and its settled
        batches are replayed instead of re-bought.
        """
        if self._started:
            raise RuntimeError("run() can only be called once per scheduler")
        self._started = True
        self._open_journal()
        outcomes: list[JobOutcome] = []
        try:
            with self.tracer.span(
                "scheduler.run", jobs=len(self._tickets), pools=sorted(self.pools)
            ):
                for ticket in self._tickets:
                    self._launch(ticket)
                self._loop(outcomes)
        finally:
            if self._journal is not None:
                self._journal.close()
            if self._owns_cache and isinstance(self.cache, DurableComparisonCache):
                self.cache.close()
        for ticket in self._tickets:
            self._replay_job_trace(ticket)
        return outcomes

    # ------------------------------------------------------------------
    # Durability: journal setup / recovery
    # ------------------------------------------------------------------
    def _journal_facts(self) -> dict[str, Any]:
        """The workload identity stamped into (and checked against) the
        journal header — everything the determinism contract requires
        to be identical for replay to be exact."""
        return {
            "root_entropy": str(self._seeds.entropy),
            "quantum": self.quantum,
            "cache": self.cache is not None,
            "pools": sorted(self.pools),
            "jobs": [
                [ticket.job.kind, ticket.fingerprint, ticket.tenant]
                for ticket in self._tickets
            ],
        }

    def _open_journal(self) -> None:
        policy = self.durability
        if policy is None or not policy.journal:
            return
        records = JobJournal.recover(policy.journal_path)
        facts = self._journal_facts()
        if records:
            header = records[0]
            if header.get("kind") != "header":
                raise JournalMismatchError("kind", header.get("kind"), "header")
            for name, actual in facts.items():
                if header.get(name) != actual:
                    raise JournalMismatchError(name, header.get(name), actual)
            for record in records[1:]:
                if record["kind"] == "serve":
                    queue = self._replay.setdefault(int(record["job_index"]), deque())
                    queue.append(record)
                    self._journal_seq += 1
                elif record["kind"] == "settled":
                    self._settled_journaled.add(int(record["job_index"]))
        self._journal = JobJournal(
            policy.journal_path, crash_after_appends=policy.crash_after_appends
        )
        if not records:
            self._journal.append("header", **facts)

    def _launch(self, ticket: JobTicket) -> None:
        """Build the tenant view, emit admission, start the job thread."""
        ticket.tracer = Tracer(buffer=True) if self.tracer.enabled else NULL_TRACER
        ticket.platform = _TenantPlatform(
            ticket,
            pools=self.pools,
            rng=ticket._platform_rng,
            ledger=_ChainedLedger(parent=self.tenant_ledger(ticket.tenant)),
            gold=self.gold,
            faults=self.faults,
            retry=self.retry,
            tracer=ticket.tracer,
        )
        if self.tracer.enabled:
            self.tracer.event(
                "job_admitted",
                job_index=ticket.index,
                job_kind=ticket.job.kind,
                tenant=ticket.tenant,
                fingerprint=ticket.fingerprint[:12],
            )
        ticket._thread = threading.Thread(
            target=ticket._run, name=f"crowd-job-{ticket.index}", daemon=True
        )
        with self._cond:
            ticket.state = "running"
        ticket._thread.start()

    def _loop(self, outcomes: list[JobOutcome]) -> None:
        live = [t for t in self._tickets]
        while live:
            self._await_parked(live)
            still_live: list[JobTicket] = []
            for ticket in live:
                if ticket.state == "done":
                    self._settle(ticket, outcomes)
                else:
                    still_live.append(ticket)
            live = still_live
            if not live:
                break
            runnable = [t for t in live if t.request is not None]
            self.ticks += 1
            admitted = self._admit(runnable)
            if self.tracer.enabled:
                self.tracer.event(
                    "scheduler_tick",
                    tick=self.ticks,
                    live=len(live),
                    runnable=len(runnable),
                    admitted=len(admitted),
                    deferred=len(runnable) - len(admitted),
                )
            for ticket in admitted:
                request = ticket.request
                assert request is not None
                ticket.request = None
                self._serve(ticket, request)
                self._await_ticket_parked(ticket)

    def _await_parked(self, live: list[JobTicket]) -> None:
        """Block until every live job thread is parked (blocked/done)."""
        with self._cond:
            ok = self._cond.wait_for(
                lambda: all(t.state in ("blocked", "done") for t in live),
                timeout=_STALL_TIMEOUT_S,
            )
        if not ok:
            raise RuntimeError(
                "scheduler stalled: a job thread stopped cooperating "
                f"(states: {[t.state for t in live]})"
            )

    def _await_ticket_parked(self, ticket: JobTicket) -> None:
        with self._cond:
            ok = self._cond.wait_for(
                lambda: ticket.state in ("blocked", "done"),
                timeout=_STALL_TIMEOUT_S,
            )
        if not ok:
            raise RuntimeError(
                f"scheduler stalled waiting on job {ticket.index} "
                f"(state: {ticket.state})"
            )

    # ------------------------------------------------------------------
    # Admission control (fair share)
    # ------------------------------------------------------------------
    def _admit(self, runnable: list[JobTicket]) -> list[JobTicket]:
        """Fair-share admission: who gets platform service this tick.

        Per pool, parked requests are ordered least-served-first (ties
        to earliest admission) and granted whole — a job's batch is one
        logical step and is never split — until the ``quantum`` of
        tasks is spent.  The front request is always granted, so a
        request larger than the quantum still makes progress and no
        job starves: every deferral strictly improves the deferred
        job's priority relative to the jobs that were served.
        """
        admitted: list[JobTicket] = []
        by_pool: dict[str, list[JobTicket]] = {}
        for ticket in runnable:
            assert ticket.request is not None
            by_pool.setdefault(ticket.request.pool_name, []).append(ticket)
        for pool_name in sorted(by_pool):
            queue = sorted(
                by_pool[pool_name],
                key=lambda t: (t.served.get(pool_name, 0), t.index),
            )
            granted: list[JobTicket] = []
            budget = self.quantum
            used = 0
            for ticket in queue:
                assert ticket.request is not None
                size = ticket.request.size
                if granted and budget is not None and used + size > budget:
                    break
                granted.append(ticket)
                used += size
                ticket.served[pool_name] = ticket.served.get(pool_name, 0) + size
            if self.tracer.enabled:
                self.tracer.event(
                    "batch_coalesced",
                    pool=pool_name,
                    requests=len(granted),
                    tasks=used,
                    deferred=len(queue) - len(granted),
                    jobs=[t.index for t in granted],
                )
            admitted.extend(granted)
        return admitted

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    def _serve(self, ticket: JobTicket, request: _CompareRequest) -> None:
        """Resolve one request (journal / cache / platform); wake its job."""
        queue = self._replay.get(ticket.index)
        if queue:
            self._replay_serve(ticket, request, queue.popleft())
            return
        answers = np.zeros(request.size, dtype=bool)
        report: BatchReport | None = None
        if self.cache is not None:
            hit_mask, cached = self.cache.lookup_batch(
                ticket.fingerprint,
                request.pool_name,
                request.judgments_per_task,
                request.indices_i,
                request.indices_j,
            )
            answers[hit_mask] = cached[hit_mask]
        else:
            hit_mask = np.zeros(request.size, dtype=bool)
        miss = np.flatnonzero(~hit_mask)
        hits = int(request.size - len(miss))
        if self.tracer.enabled and hits:
            self.tracer.event(
                "cache_hit",
                job_index=ticket.index,
                pool=request.pool_name,
                hits=hits,
                misses=len(miss),
            )
        fresh: np.ndarray | None = None
        tape: list[tuple[str, int, float]] = []
        if len(miss):
            assert ticket.platform is not None
            ledger = ticket.platform.ledger
            if self._journal is not None and isinstance(ledger, _ChainedLedger):
                ledger.tape = tape
            try:
                fresh, report = CrowdPlatform.compare_batch(
                    ticket.platform,
                    request.pool_name,
                    request.indices_i[miss],
                    request.indices_j[miss],
                    request.values_i[miss],
                    request.values_j[miss],
                    judgments_per_task=request.judgments_per_task,
                )
            except BaseException as exc:  # repro-lint: disable=ERR003 -- tunnelled to (and re-raised on) the job thread
                # Not journaled: a failed serve settles nothing.  On
                # resume the re-run reaches this serve live (with the
                # restored RNG/ledger state) and fails identically.
                request.error = exc
                self._wake(ticket, request)
                return
            finally:
                if self._journal is not None and isinstance(ledger, _ChainedLedger):
                    ledger.tape = None
            answers[miss] = fresh
        if report is None:
            # Every pair was served from the cache: no physical steps
            # ran and nothing was paid.
            report = BatchReport(
                answers=[bool(a) for a in answers],
                physical_steps=0,
                judgments_collected=0,
                judgments_discarded=0,
            )
        # Ordering discipline: the journal record must be durable
        # *before* the durable cache commits these judgments, so the
        # store can never hold an entry whose journal record was lost
        # to a crash (which would flip a miss to a hit on resume and
        # break ledger parity).
        if self._journal is not None:
            self._journal_serve(ticket, request, miss, fresh, answers, report, tape, hits)
        if self.cache is not None and len(miss):
            assert fresh is not None
            self.cache.store_batch(
                ticket.fingerprint,
                request.pool_name,
                request.judgments_per_task,
                request.indices_i[miss],
                request.indices_j[miss],
                fresh,
            )
        request.answers = answers
        request.report = report
        self._wake(ticket, request)

    def _journal_serve(
        self,
        ticket: JobTicket,
        request: _CompareRequest,
        miss: np.ndarray,
        fresh: np.ndarray | None,
        answers: np.ndarray,
        report: BatchReport,
        tape: list[tuple[str, int, float]],
        hits: int,
    ) -> None:
        """Durably record one served batch (fsynced before return)."""
        assert self._journal is not None
        touched = bool(len(miss))
        assert ticket.platform is not None
        record = self._journal.append(
            "serve",
            seq=self._journal_seq,
            job_index=ticket.index,
            pool=request.pool_name,
            judgments=request.judgments_per_task,
            indices_i=[int(v) for v in request.indices_i],
            indices_j=[int(v) for v in request.indices_j],
            miss=[int(v) for v in miss],
            fresh=[bool(v) for v in fresh] if fresh is not None else [],
            answers=[bool(v) for v in answers],
            hits=hits,
            charges=[[label, count, cost] for label, count, cost in tape],
            report=_report_to_state(report) if touched else None,
            platform=_capture_platform_state(ticket.platform) if touched else None,
        )
        self._journal_seq += 1
        if self.tracer.enabled:
            self.tracer.event(
                "journal_append",
                job_index=ticket.index,
                pool=request.pool_name,
                seq=record["seq"],
                tasks=request.size,
                misses=len(miss),
            )
        self.tracer.count("durability.journal_appends")

    def _replay_serve(
        self, ticket: JobTicket, request: _CompareRequest, record: JournalRecord
    ) -> None:
        """Serve one request from its journal record — no platform spend.

        Validates that the live request matches the journaled one (the
        determinism contract guarantees it for an identical workload),
        replays the charge tape through the real ledgers, restores the
        platform's post-batch state, and rebuilds the report the job
        originally saw.
        """
        expectations: list[tuple[str, object, object]] = [
            ("pool", record["pool"], request.pool_name),
            ("judgments", record["judgments"], request.judgments_per_task),
            ("indices_i", record["indices_i"], [int(v) for v in request.indices_i]),
            ("indices_j", record["indices_j"], [int(v) for v in request.indices_j]),
        ]
        for name, recorded, actual in expectations:
            if recorded != actual:
                raise JournalMismatchError(f"request.{name}", recorded, actual)
        answers = np.asarray(record["answers"], dtype=bool)
        miss = np.asarray(record["miss"], dtype=np.intp)
        hits = int(record["hits"])
        if self.cache is not None:
            # Mirror the original lookup's traffic counters and event.
            self.cache.hits += hits
            self.cache.misses += len(miss)
            if self.tracer.enabled and hits:
                self.tracer.event(
                    "cache_hit",
                    job_index=ticket.index,
                    pool=request.pool_name,
                    hits=hits,
                    misses=len(miss),
                )
        assert ticket.platform is not None
        for label, count, unit_cost in record["charges"]:
            ticket.platform.ledger.charge(str(label), int(count), float(unit_cost))
            self.replayed_operations += int(count)
            self.replayed_money += int(count) * float(unit_cost)
        if record["platform"] is not None:
            _restore_platform_state(ticket.platform, record["platform"])
        if len(miss):
            report = _report_from_state(record["report"])
            if self.cache is not None:
                self.cache.store_batch(
                    ticket.fingerprint,
                    request.pool_name,
                    request.judgments_per_task,
                    request.indices_i[miss],
                    request.indices_j[miss],
                    np.asarray(record["fresh"], dtype=bool),
                )
        else:
            report = BatchReport(
                answers=[bool(a) for a in answers],
                physical_steps=0,
                judgments_collected=0,
                judgments_discarded=0,
            )
        self.replayed_batches += 1
        if self.tracer.enabled:
            self.tracer.event(
                "resume_replayed",
                job_index=ticket.index,
                pool=request.pool_name,
                seq=record.get("seq"),
                tasks=request.size,
                misses=len(miss),
            )
        self.tracer.count("durability.resume_replays")
        request.answers = answers
        request.report = report
        self._wake(ticket, request)

    def _wake(self, ticket: JobTicket, request: _CompareRequest) -> None:
        with self._cond:
            ticket.state = "running"
        request.done.set()

    # ------------------------------------------------------------------
    # Settling / telemetry merge
    # ------------------------------------------------------------------
    def _settle(self, ticket: JobTicket, outcomes: list[JobOutcome]) -> None:
        if ticket._thread is not None:
            ticket._thread.join(timeout=_STALL_TIMEOUT_S)
        error = ticket._error
        if error is None:
            status: Literal["ok", "budget_exceeded", "failed"] = "ok"
        elif isinstance(error, BudgetExceededError):
            status = "budget_exceeded"
        else:
            status = "failed"
        outcome = JobOutcome(
            ticket=ticket,
            settle_index=len(outcomes),
            status=status,
            result=ticket._result,
            error=error,
        )
        ticket.outcome = outcome
        outcomes.append(outcome)
        if self._journal is not None and ticket.index not in self._settled_journaled:
            self._journal.append(
                "settled",
                job_index=ticket.index,
                settle_index=outcome.settle_index,
                status=status,
                cost=outcome.cost,
            )
            if self.tracer.enabled:
                self.tracer.event(
                    "checkpoint_written",
                    job_index=ticket.index,
                    settle_index=outcome.settle_index,
                    status=status,
                )
        if self.tracer.enabled:
            self.tracer.event(
                "job_settled",
                job_index=ticket.index,
                settle_index=outcome.settle_index,
                status=status,
                tenant=ticket.tenant,
                cost=round(outcome.cost, 9),
            )

    def _replay_job_trace(self, ticket: JobTicket) -> None:
        """Replay one job's buffered records into the scheduler trace.

        Mirrors the parallel engine's shard replay: job-local ``seq`` /
        ``t`` are preserved as ``job_seq`` / ``job_t`` and the parent
        stamps its own ordering, so the merged trace is totally ordered
        with per-job provenance.  Called in admission order.
        """
        if not self.tracer.enabled or ticket.tracer is NULL_TRACER:
            return
        for record in ticket.tracer.records:
            fields = dict(record)
            kind = fields.pop("kind", "unknown")
            fields["job_seq"] = fields.pop("seq", None)
            fields["job_t"] = fields.pop("t", None)
            fields.pop("job_index", None)
            self.tracer.event(kind, job_index=ticket.index, **fields)
        for name, counter in ticket.tracer.metrics.counters.items():
            self.tracer.metrics.counter(name).add(counter.value)
        for name, timer in ticket.tracer.metrics.timers.items():
            merged = self.tracer.metrics.timer(name)
            merged.total_seconds += timer.total_seconds
            merged.count += timer.count
