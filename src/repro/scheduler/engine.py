"""The deterministic multi-job scheduler.

Section 1 positions the paper's algorithm as a primitive for host
systems (CrowdDB and friends) that answer *many* crowd queries at once.
This module is that serving layer for the simulator: a
:class:`CrowdScheduler` admits many jobs — any class speaking the
uniform ``submit()/settle()`` protocol of :mod:`repro.jobs` — and
settles them cooperatively against **shared** worker pools, instead of
giving each query a private platform.

Execution model
---------------
Each admitted job runs as a **coroutine ticket**: its algorithm body is
the ``steps()`` generator of :mod:`repro.jobs`, advanced on the
scheduler's own thread until it yields a platform-backed oracle call,
which parks it (no thread, no lock handoff).  Jobs speaking only the
``submit()/settle()`` protocol fall back to a thread per job with the
classic park/wake discipline.  When every live job is parked, the
scheduler runs one *tick* of its virtual clock:

1. **Coalesce** — the parked comparison requests are grouped per pool
   (one ``batch_coalesced`` record each), the scheduler-level view of
   a consolidated submission.
2. **Admit** — fair-share admission per pool: requests are served in
   least-total-tasks-served-first order (ties to earliest admission),
   a per-tick ``quantum`` bounds how many tasks one pool grants, and
   the front request is always admitted so no job can starve.
3. **Settle** — each admitted request is resolved against the
   cross-job :class:`~repro.scheduler.cache.ComparisonMemoCache`
   first; the misses are bought from the platform.  Fast-path-eligible
   requests are **fused**: every tenant prepares its own Philox
   judgment plan (its private counter stream), then all judgments of
   the tick are decided with one vectorized call per (pool, worker
   model), then charges / counters / journal records land per tenant
   in admission order — bit-identical to serving the requests one by
   one, but with one platform pass per tick (``fusion=False`` restores
   one-at-a-time service).  Journaled runs frame the whole tick's
   records into one group commit (a single fsync).
4. **Resume** — replies are delivered in admission order: coroutine
   tickets are advanced inline, thread tickets woken one at a time —
   so mutations of shared worker state (gold bans) happen in one
   deterministic order.

The three tick phases are timed separately (``scheduler.tick.settle``
/ ``scheduler.tick.scatter`` / ``scheduler.tick.resume`` spans).

Determinism contract
--------------------
Per-job randomness is isolated: admission order assigns each job two
``SeedSequence.spawn`` children (algorithm stream + platform stream),
and tenant platforms never share a generator.  Hence:

* Same root seed + same submission order + same configuration ⇒
  bit-identical per-job results, costs, and settle order, every run.
* With the cache disabled, each job's *result and cost* are invariant
  to ``quantum`` and to which other jobs share the schedule (settle
  order may shift — a finer quantum spreads completion across more
  ticks — but what each job answers and pays does not).
* With the cache disabled and stateless pools (no gold bans mutating
  shared workers), each job's result is bit-identical to executing it
  alone on a private platform with the same seeds — the baseline the
  throughput benchmark exploits.
* Cache hits skip platform RNG draws, so cache-enabled runs trade
  bit-identity *to the isolated baseline* for strictly lower cost;
  they remain bit-reproducible run-to-run.

See ``docs/SCHEDULER.md`` for the full contract and worked examples.
"""

from __future__ import annotations

import threading
import warnings
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Literal

import numpy as np

from ..core.steps import OracleCall, Steps
from ..durability import (
    DurabilityPolicy,
    JobJournal,
    JournalMismatchError,
    JournalRecord,
    PersistentComparisonStore,
)
from ..platform.accounting import CostLedger
from ..platform.errors import CostCapError, DegradedBatchError
from ..platform.faults import FaultPlan, RetryPolicy
from ..platform.gold import GoldPolicy
from ..platform.job import BatchReport, TaskReport
from ..platform.oracle_adapter import PlatformWorkerModel
from ..platform.platform import CrowdPlatform, FastBatchPlan, fast_model_groups
from ..platform.workforce import WorkerPool
from ..jobs import BudgetExceededError, CrowdJobResult, CrowdMaxJob
from ..telemetry import NULL_TRACER, Tracer, resolve_tracer
from .cache import ComparisonMemoCache, DurableComparisonCache, fingerprint_instance
from .errors import (
    JobCancelledError,
    SchedulerSaturatedError,
    SchedulerThreadLeakWarning,
)

__all__ = ["JobTicket", "JobOutcome", "CrowdScheduler"]

#: How long the scheduler waits for job threads to park before
#: declaring the loop stalled.  Cooperative handoffs complete in
#: microseconds; this only fires if a job thread dies uncooperatively.
_STALL_TIMEOUT_S = 120.0


@dataclass
class _ChainedLedger(CostLedger):
    """A per-job ledger that also bills a shared per-tenant ledger.

    Gives each job private accounting (and a private ``hard_cap`` the
    job layer may tighten mid-run) while every charge *also* lands on
    the tenant's shared ledger — so a tenant-level cap is enforced
    jointly across all of that tenant's concurrent jobs.  The parent is
    checked before the private ledger records anything, keeping both
    ledgers' never-above-cap invariants intact.

    When :attr:`tape` is a list, every *successful* charge is also
    appended to it as ``(label, count, unit_cost)`` — the journal's
    charge tape.  Replaying the tape through :meth:`charge` in the
    recorded order rebuilds both ledgers with bit-identical float
    accumulation, which is what makes resumed cost totals exact.
    """

    parent: CostLedger | None = None
    tape: list[tuple[str, int, float]] | None = None

    def charge(self, label: str, count: int, unit_cost: float) -> None:
        amount = count * unit_cost
        if self.parent is not None and not self.parent.can_afford(amount):
            raise CostCapError(
                label=f"tenant:{label}",
                attempted=amount,
                cap=float(self.parent.hard_cap),  # type: ignore[arg-type]
                spent=self.parent.total_cost,
            )
        super().charge(label, count, unit_cost)
        if self.parent is not None:
            self.parent.charge(label, count, unit_cost)
        if self.tape is not None:
            self.tape.append((label, count, unit_cost))


def _capture_platform_state(platform: CrowdPlatform) -> dict[str, Any]:
    """Snapshot the platform facts a journaled batch must restore.

    Everything a later batch's outcome can depend on: the RNG stream
    position, the fast path's Philox key and judgment counter, and the
    step/fault counters the job meter diffs.  The judgment audit log is
    deliberately *not* captured (it can be huge and no decision reads
    it); a resumed run's log starts at the crash point.
    """
    return {
        "rng_state": platform.rng.bit_generator.state,
        "fast_key": platform._fast_key,
        "fast_seq": platform._fast_seq,
        "logical_steps": platform.logical_steps,
        "physical_steps_total": platform.physical_steps_total,
        "fast_batches_total": platform.fast_batches_total,
        "faults_injected_total": platform.faults_injected_total,
        "tasks_degraded_total": platform.tasks_degraded_total,
        "retries_total": platform.retries_total,
    }


def _restore_platform_state(platform: CrowdPlatform, state: dict[str, Any]) -> None:
    platform.rng.bit_generator.state = state["rng_state"]
    fast_key = state["fast_key"]
    platform._fast_key = None if fast_key is None else int(fast_key)
    platform._fast_seq = int(state["fast_seq"])
    platform.logical_steps = int(state["logical_steps"])
    platform.physical_steps_total = int(state["physical_steps_total"])
    platform.fast_batches_total = int(state["fast_batches_total"])
    platform.faults_injected_total = int(state["faults_injected_total"])
    platform.tasks_degraded_total = int(state["tasks_degraded_total"])
    platform.retries_total = int(state["retries_total"])


def _report_to_state(report: BatchReport) -> dict[str, Any]:
    """A :class:`BatchReport` as JSON-safe journal payload."""
    return {
        "answers": [bool(a) for a in report.answers],
        "physical_steps": report.physical_steps,
        "judgments_collected": report.judgments_collected,
        "judgments_discarded": report.judgments_discarded,
        "workers_banned": [int(w) for w in report.workers_banned],
        "task_reports": [asdict(t) for t in report.task_reports],
        "faults_injected": report.faults_injected,
        "judgments_malformed": report.judgments_malformed,
        "judgments_lost_late": report.judgments_lost_late,
        "retries": report.retries,
    }


def _report_from_state(state: dict[str, Any]) -> BatchReport:
    return BatchReport(
        answers=[bool(a) for a in state["answers"]],
        physical_steps=int(state["physical_steps"]),
        judgments_collected=int(state["judgments_collected"]),
        judgments_discarded=int(state["judgments_discarded"]),
        workers_banned=[int(w) for w in state["workers_banned"]],
        task_reports=[TaskReport(**t) for t in state["task_reports"]],
        faults_injected=int(state["faults_injected"]),
        judgments_malformed=int(state["judgments_malformed"]),
        judgments_lost_late=int(state["judgments_lost_late"]),
        retries=int(state["retries"]),
    )


@dataclass
class _CompareRequest:
    """One parked ``compare_batch`` call awaiting scheduler service."""

    pool_name: str
    indices_i: np.ndarray
    indices_j: np.ndarray
    values_i: np.ndarray
    values_j: np.ndarray
    judgments_per_task: int
    #: ``strict`` mirrors the worker model's flag for coroutine tickets:
    #: the scheduler raises ``DegradedBatchError`` at resume time where
    #: ``PlatformWorkerModel.decide`` would have (thread tickets keep
    #: raising inside ``decide`` itself).
    strict: bool = False
    done: threading.Event = field(default_factory=threading.Event)
    answers: np.ndarray | None = None
    report: BatchReport | None = None
    error: BaseException | None = None

    @property
    def size(self) -> int:
        return len(self.indices_i)


@dataclass
class _FusedPending:
    """One fused-eligible request buffered for the next flush."""

    ticket: "JobTicket"
    request: _CompareRequest
    #: Positions within the request that missed the cache.
    miss: np.ndarray
    #: Answer array with cache hits already filled in.
    answers: np.ndarray
    hits: int


class _TenantPlatform(CrowdPlatform):
    """One job's view of the shared platform.

    Shares the scheduler's :class:`WorkerPool` objects (and gold/fault
    policies) but owns a private RNG stream and a chained per-job
    ledger.  ``compare_batch`` does not execute — it parks the request
    with the scheduler and blocks until the reply arrives, which is the
    entire interleaving mechanism.
    """

    def __init__(self, ticket: "JobTicket", **kwargs: Any):
        super().__init__(**kwargs)
        self._ticket = ticket

    def compare_batch(
        self,
        pool_name: str,
        indices_i: np.ndarray,
        indices_j: np.ndarray,
        values_i: np.ndarray,
        values_j: np.ndarray,
        judgments_per_task: int = 1,
    ) -> tuple[np.ndarray, BatchReport]:
        self._pool(pool_name)  # fail fast on unknown pools, as the base does
        if self._ticket._gen is not None:
            # A coroutine ticket's platform traffic flows through its
            # yielded OracleCall steps; a synchronous call from inside
            # the generator would deadlock the single scheduler thread,
            # so refuse it loudly instead.
            raise RuntimeError(
                "synchronous compare_batch from a coroutine job; platform "
                "calls must be yielded as OracleCall steps"
            )
        request = _CompareRequest(
            pool_name=pool_name,
            indices_i=np.asarray(indices_i),
            indices_j=np.asarray(indices_j),
            values_i=np.asarray(values_i),
            values_j=np.asarray(values_j),
            judgments_per_task=judgments_per_task,
        )
        return self._ticket._await_service(request)


class JobTicket:
    """Handle for one admitted job; resolves to a :class:`JobOutcome`.

    Returned by :meth:`CrowdScheduler.submit`.  The two seed children
    (algorithm + platform stream) are spawned at admission, so a
    ticket's randomness is fixed by its admission index alone.
    """

    def __init__(
        self,
        index: int,
        job: CrowdMaxJob,
        tenant: str,
        seed: np.random.SeedSequence,
        scheduler: "CrowdScheduler",
    ):
        self.index = index
        self.job = job
        self.tenant = tenant
        self.fingerprint = fingerprint_instance(job.instance)
        #: Cooperative cancellation flag; see :meth:`cancel`.
        self.cancel_requested = False
        job_seed, platform_seed = seed.spawn(2)
        self.rng = np.random.default_rng(job_seed)
        self._platform_rng = np.random.default_rng(platform_seed)
        self.outcome: JobOutcome | None = None
        #: Tasks served per pool, the fair-share bookkeeping.
        self.served: dict[str, int] = {}
        self._scheduler = scheduler
        self.tracer: Tracer = NULL_TRACER
        self.platform: _TenantPlatform | None = None
        #: Thread tickets only (jobs without a ``steps()`` generator);
        #: coroutine tickets never start a thread.
        self._thread: threading.Thread | None = None
        #: The coroutine ticket's suspended step generator; ``None``
        #: for thread tickets.
        self._gen: Steps[CrowdJobResult] | None = None
        #: The request being settled this tick (popped from
        #: :attr:`request` at settle, delivered back at resume).
        self._inflight: _CompareRequest | None = None
        #: "ready" | "running" | "blocked" | "done", guarded by the
        #: scheduler condition.
        self.state: str = "ready"
        self.request: _CompareRequest | None = None
        self._result: CrowdJobResult | None = None
        self._error: BaseException | None = None

    # ------------------------------------------------------------------
    # Job-thread side
    # ------------------------------------------------------------------
    def _await_service(
        self, request: _CompareRequest
    ) -> tuple[np.ndarray, BatchReport]:
        """Park this thread until the scheduler serves ``request``."""
        cond = self._scheduler._cond
        with cond:
            self.request = request
            self.state = "blocked"
            cond.notify_all()
        request.done.wait()
        if request.error is not None:
            raise request.error
        assert request.answers is not None and request.report is not None
        return request.answers, request.report

    def _run(self) -> None:
        """Thread body: settle the job, capture the outcome, park."""
        try:
            assert self.platform is not None
            self._result = self.job.submit(
                self.platform, self.rng, tracer=self.tracer
            ).settle()
        except BaseException as exc:  # repro-lint: disable=ERR003 -- outcome capture; re-raised on the ticket
            self._error = exc
        finally:
            cond = self._scheduler._cond
            with cond:
                self.state = "done"
                self.request = None
                cond.notify_all()

    # ------------------------------------------------------------------
    # Cancellation (host-facing)
    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Request cooperative cancellation of this job.

        Safe to call from any thread at any time — the method only
        sets a flag.  The scheduler honours it at the job's next
        control point: a job not yet launched settles immediately as
        ``"cancelled"``; a running job has
        :class:`~repro.scheduler.errors.JobCancelledError` thrown into
        it at its next parked oracle call instead of the batch
        answers.  A job that has already settled is unaffected — its
        outcome stands, which is why the HTTP layer answers 409 for
        cancels of settled jobs.
        """
        self.cancel_requested = True


@dataclass(frozen=True)
class JobOutcome:
    """One settled job, in settle order.

    ``status`` is ``"ok"`` for a clean settle, ``"budget_exceeded"``
    when the job's (or its tenant's) mid-flight cap stopped it — the
    partial result rides on ``error.partial`` — ``"cancelled"`` when a
    host revoked the job via :meth:`JobTicket.cancel`, and
    ``"failed"`` for any other exception.  Exactly one of ``result`` /
    ``error`` is set.
    """

    ticket: JobTicket
    settle_index: int
    status: Literal["ok", "budget_exceeded", "cancelled", "failed"]
    result: CrowdJobResult | None
    error: BaseException | None

    @property
    def job(self) -> CrowdMaxJob:
        return self.ticket.job

    @property
    def tenant(self) -> str:
        return self.ticket.tenant

    @property
    def cost(self) -> float:
        """Money this job spent (its private ledger total)."""
        assert self.ticket.platform is not None
        return self.ticket.platform.ledger.total_cost


class CrowdScheduler:
    """Deterministic cooperative multi-job scheduler over shared pools.

    Parameters
    ----------
    pools:
        The shared worker pools every admitted job settles against.
    root_seed:
        Root of the per-job ``SeedSequence.spawn`` tree; with the same
        root and submission order, every run is bit-identical.
    gold, faults, retry:
        Shared platform policies, applied to every tenant view (one
        quality-control regime for the whole marketplace).
    cache:
        ``True`` (default) builds a fresh
        :class:`~repro.scheduler.cache.ComparisonMemoCache`; pass an
        existing cache to share it across scheduler generations, or
        ``False`` to disable cross-job reuse (the isolated-equivalent
        mode the determinism contract is stated against).
    quantum:
        Fair-share bound: at most this many comparison tasks granted
        per pool per tick (the front request is always admitted, even
        when larger).  ``None`` grants everything runnable each tick.
    max_pending:
        Bounded admission queue; submissions past it raise
        :class:`~repro.scheduler.errors.SchedulerSaturatedError`.
    tenant_caps:
        Optional ``{tenant: hard_cap}`` budgets; all jobs of a tenant
        charge one shared ledger, so the cap binds them jointly.
    tenant_ledgers:
        Optional ``{tenant: CostLedger}`` mapping used as the backing
        store for the shared tenant ledgers.  A scheduler is one-shot
        (:meth:`run` once), so a long-lived host — the HTTP service
        runs one scheduler *generation* per admitted batch — injects
        the same dict into every generation and tenant spending
        accumulates across them; a tenant cap then bounds the
        tenant's **lifetime** spend, not one generation's.  Ledgers
        for tenants missing from the dict are created lazily (with
        ``tenant_caps``) and left in it.
    tracer:
        Telemetry destination.  Scheduler-level records
        (``job_admitted`` / ``scheduler_tick`` / ``batch_coalesced`` /
        ``cache_hit`` / ``job_settled``) are emitted live; each job's
        own records are buffered and replayed in admission order after
        the run, stamped with ``job_index`` (mirroring the parallel
        engine's shard replay).
    durability:
        Opt-in durable state (see :mod:`repro.durability` and
        ``docs/DURABILITY.md``).  With ``persist_cache``, the cross-job
        cache is backed by SQLite and warm-starts from previous runs;
        with ``journal``, every settled batch is journaled before it
        becomes observable anywhere else, and :meth:`run` transparently
        *resumes* when the policy's journal already holds records for
        the identical workload — journaled batches are replayed without
        touching the platform (zero re-spend), then execution continues
        live, bit-identical to an uninterrupted run.  Requires
        stateless pools for exactness: gold bans mutate shared workers
        and are not reconstructed (a warning says so).
    fusion:
        ``True`` (default) settles all fast-path-eligible requests of a
        tick in one fused platform pass — per-tenant Philox plans, one
        vectorized decide per (pool, worker model) — bit-identical to
        serving them one by one.  ``False`` is the escape hatch: every
        request is served alone through the full ``compare_batch``
        machinery, the pre-fusion behaviour.
    """

    def __init__(
        self,
        pools: dict[str, WorkerPool],
        root_seed: int | np.random.SeedSequence,
        gold: GoldPolicy | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        cache: ComparisonMemoCache | bool = True,
        quantum: int | None = 64,
        max_pending: int = 64,
        tenant_caps: dict[str, float] | None = None,
        tenant_ledgers: dict[str, CostLedger] | None = None,
        tracer: Tracer | None = None,
        durability: DurabilityPolicy | None = None,
        fusion: bool = True,
    ):
        if not pools:
            raise ValueError("the scheduler needs at least one worker pool")
        if quantum is not None and quantum < 1:
            raise ValueError("quantum must be at least 1 (or None for unlimited)")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.pools = dict(pools)
        self._seeds = (
            root_seed
            if isinstance(root_seed, np.random.SeedSequence)
            else np.random.SeedSequence(root_seed)
        )
        self.gold = gold
        self.faults = faults
        self.retry = retry
        self.tracer = resolve_tracer(tracer)
        self.durability = durability
        self._owns_cache = False
        if cache is True:
            if durability is not None and durability.persist_cache:
                self.cache: ComparisonMemoCache | None = DurableComparisonCache(
                    PersistentComparisonStore(durability.cache_path),
                    tracer=self.tracer,
                )
                self._owns_cache = True
            else:
                self.cache = ComparisonMemoCache(tracer=self.tracer)
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        if durability is not None and durability.journal and gold is not None:
            warnings.warn(
                "journaled durability with a gold policy: gold bans mutate "
                "shared worker state that journal replay does not "
                "reconstruct, so a resumed run is only exact when no worker "
                "was banned before the crash",
                UserWarning,
                stacklevel=2,
            )
        self.quantum = quantum
        self.fusion = bool(fusion)
        self.max_pending = max_pending
        # The injected dict (when given) is used *as* the store, not
        # copied: lazily-created ledgers land in it, so the host sees
        # them and the next generation reuses them.
        self._tenant_ledgers: dict[str, CostLedger] = (
            tenant_ledgers if tenant_ledgers is not None else {}
        )
        self._tenant_caps = dict(tenant_caps or {})
        self._tickets: list[JobTicket] = []
        self._cond = threading.Condition()
        self._started = False
        self.ticks = 0
        self._journal: JobJournal | None = None
        self._replay: dict[int, deque[JournalRecord]] = {}
        self._journal_seq = 0
        self._settled_journaled: set[int] = set()
        #: Batches served from the journal (not the platform) this run.
        self.replayed_batches = 0
        #: Ledger operations re-applied from journal charge tapes.  The
        #: ledgers themselves cannot tell replayed charges from live
        #: ones (that is the point — bit-identical totals), so this is
        #: the counter that proves zero re-spend: judgments actually
        #: bought this run = ``ledger ops - replayed_operations``.
        self.replayed_operations = 0
        #: Money re-applied from journal charge tapes (same caveat).
        self.replayed_money = 0.0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self,
        job: CrowdMaxJob,
        tenant: str = "default",
        seed: int | np.random.SeedSequence | None = None,
    ) -> JobTicket:
        """Admit one job; returns its ticket (outcome set after run()).

        Raises :class:`SchedulerSaturatedError` when the bounded queue
        is full and ``RuntimeError`` after :meth:`run` has started —
        the job set must be fixed before the clock starts so admission
        order (and therefore seeding) is unambiguous.  Backpressure is
        checked *before* any seed is spawned, so a refused submission
        leaves the root seed tree untouched.

        ``seed`` pins the ticket's randomness explicitly instead of
        spawning it from the scheduler's root: the ticket splits it
        into the usual (algorithm, platform) stream pair.  With the
        cache off and stateless pools, an explicitly-seeded job's
        result is bit-identical regardless of which scheduler
        generation serves it or what shares the schedule — the
        property the HTTP layer's parity gate is built on.
        """
        if self._started:
            raise RuntimeError("cannot submit after run() has started")
        if len(self._tickets) >= self.max_pending:
            raise SchedulerSaturatedError(
                capacity=self.max_pending, pending=len(self._tickets)
            )
        if seed is None:
            seed_seq = self._seeds.spawn(1)[0]
        elif isinstance(seed, np.random.SeedSequence):
            seed_seq = seed
        else:
            seed_seq = np.random.SeedSequence(int(seed))
        ticket = JobTicket(
            index=len(self._tickets),
            job=job,
            tenant=tenant,
            seed=seed_seq,
            scheduler=self,
        )
        self._tickets.append(ticket)
        return ticket

    def tenant_ledger(self, tenant: str) -> CostLedger:
        """The shared ledger all of ``tenant``'s jobs charge."""
        ledger = self._tenant_ledgers.get(tenant)
        if ledger is None:
            ledger = CostLedger(hard_cap=self._tenant_caps.get(tenant))
            self._tenant_ledgers[tenant] = ledger
        return ledger

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self) -> list[JobOutcome]:
        """Settle every admitted job; returns outcomes in settle order.

        With a journaling :class:`~repro.durability.DurabilityPolicy`,
        recovers the journal first: an empty journal starts a fresh
        (recorded) run; an existing one must describe the identical
        workload (else :class:`JournalMismatchError`) and its settled
        batches are replayed instead of re-bought.
        """
        if self._started:
            raise RuntimeError("run() can only be called once per scheduler")
        self._started = True
        self._open_journal()
        outcomes: list[JobOutcome] = []
        try:
            with self.tracer.span(
                "scheduler.run", jobs=len(self._tickets), pools=sorted(self.pools)
            ):
                for ticket in self._tickets:
                    self._launch(ticket)
                self._loop(outcomes)
        finally:
            self._reap_threads()
            if self._journal is not None:
                self._journal.close()
            if self._owns_cache and isinstance(self.cache, DurableComparisonCache):
                self.cache.close()
        for ticket in self._tickets:
            self._replay_job_trace(ticket)
        return outcomes

    # ------------------------------------------------------------------
    # Durability: journal setup / recovery
    # ------------------------------------------------------------------
    def _journal_facts(self) -> dict[str, Any]:
        """The workload identity stamped into (and checked against) the
        journal header — everything the determinism contract requires
        to be identical for replay to be exact."""
        return {
            "root_entropy": str(self._seeds.entropy),
            "quantum": self.quantum,
            "fusion": self.fusion,
            "cache": self.cache is not None,
            "pools": sorted(self.pools),
            "jobs": [
                [ticket.job.kind, ticket.fingerprint, ticket.tenant]
                for ticket in self._tickets
            ],
        }

    def _open_journal(self) -> None:
        policy = self.durability
        if policy is None or not policy.journal:
            return
        records = JobJournal.recover(policy.journal_path)
        facts = self._journal_facts()
        if records:
            header = records[0]
            if header.get("kind") != "header":
                raise JournalMismatchError("kind", header.get("kind"), "header")
            for name, actual in facts.items():
                if header.get(name) != actual:
                    raise JournalMismatchError(name, header.get(name), actual)
            for record in records[1:]:
                if record["kind"] == "serve":
                    queue = self._replay.setdefault(int(record["job_index"]), deque())
                    queue.append(record)
                    self._journal_seq += 1
                elif record["kind"] == "settled":
                    self._settled_journaled.add(int(record["job_index"]))
        self._journal = JobJournal(
            policy.journal_path, crash_after_appends=policy.crash_after_appends
        )
        if not records:
            self._journal.append("header", **facts)
        if isinstance(self.cache, DurableComparisonCache):
            # Group-commit discipline: with a journal active the SQLite
            # write-through is deferred and flushed only after the
            # tick's journal group is durable, so the store can never
            # get ahead of the journal even within a fused tick.
            self.cache.deferred = True

    def _launch(self, ticket: JobTicket) -> None:
        """Build the tenant view, emit admission, start the job.

        Jobs that expose the ``steps()`` generator protocol run as
        coroutine tickets on the scheduler's own thread: the generator
        is advanced to its first platform call right here, in admission
        order.  Jobs speaking only ``submit()/settle()`` fall back to
        the thread-per-job park/wake discipline.
        """
        ticket.tracer = Tracer(buffer=True) if self.tracer.enabled else NULL_TRACER
        ticket.platform = _TenantPlatform(
            ticket,
            pools=self.pools,
            rng=ticket._platform_rng,
            ledger=_ChainedLedger(parent=self.tenant_ledger(ticket.tenant)),
            gold=self.gold,
            faults=self.faults,
            retry=self.retry,
            tracer=ticket.tracer,
        )
        if ticket.cancel_requested:
            # Cancelled before launch: settle as "cancelled" without
            # opening the generator or spending anything.  The tenant
            # platform above is still built so the outcome's cost
            # accessor works (it reads 0.0).
            ticket._error = JobCancelledError(ticket.index)
            ticket.state = "done"
            return
        if self.tracer.enabled:
            self.tracer.event(
                "job_admitted",
                job_index=ticket.index,
                job_kind=ticket.job.kind,
                tenant=ticket.tenant,
                fingerprint=ticket.fingerprint[:12],
            )
        if callable(getattr(ticket.job, "steps", None)):
            ticket.state = "running"
            self._start(ticket)
            return
        ticket._thread = threading.Thread(
            target=ticket._run, name=f"crowd-job-{ticket.index}", daemon=True
        )
        with self._cond:
            ticket.state = "running"
        ticket._thread.start()

    # ------------------------------------------------------------------
    # Coroutine tickets
    # ------------------------------------------------------------------
    def _start(self, ticket: JobTicket) -> None:
        """Open a coroutine ticket's generator and run to its first park."""
        assert ticket.platform is not None
        try:
            submitted = ticket.job.submit(
                ticket.platform, ticket.rng, tracer=ticket.tracer
            )
            ticket._gen = submitted.steps()
        except BaseException as exc:  # repro-lint: disable=ERR003 -- outcome capture; re-raised on the ticket
            ticket._error = exc
            ticket.state = "done"
            return
        self._advance(ticket, "next")

    def _advance(self, ticket: JobTicket, action: str, payload: Any = None) -> None:
        """Resume a coroutine ticket until it parks again or finishes.

        The scheduler-side twin of :func:`~repro.core.steps.drive_steps`:
        oracle calls backed by the ticket's own tenant platform are
        *intercepted* — converted to a parked :class:`_CompareRequest`
        for the next tick — while every other call (private simulated
        models) is performed inline, with exceptions delivered into the
        generator at its yield point exactly as the trampoline would.
        """
        gen = ticket._gen
        assert gen is not None
        try:
            if action == "next":
                step = next(gen)
            elif action == "throw":
                step = gen.throw(payload)
            else:
                step = gen.send(payload)
            while True:
                request = self._intercept(ticket, step)
                if request is not None:
                    ticket.request = request
                    ticket.state = "blocked"
                    return
                try:
                    result = step.perform()
                except BaseException as exc:  # repro-lint: disable=ERR003 -- re-raised inside the generator at its yield point
                    step = gen.throw(exc)
                else:
                    step = gen.send(result)
        except StopIteration as stop:
            ticket._result = stop.value
            ticket.state = "done"
        except BaseException as exc:  # repro-lint: disable=ERR003 -- outcome capture; re-raised on the ticket
            ticket._error = exc
            ticket.state = "done"

    def _intercept(
        self, ticket: JobTicket, step: OracleCall
    ) -> _CompareRequest | None:
        """A parked request for ``step`` when it targets this tenant's
        platform, else ``None`` (the step is performed inline)."""
        model = step.model
        if not isinstance(model, PlatformWorkerModel):
            return None
        if model.platform is not ticket.platform:
            return None
        indices_i, indices_j = step.indices_i, step.indices_j
        if indices_i is None or indices_j is None:
            # Mirror PlatformWorkerModel.decide's placeholder synthesis.
            indices_i = np.arange(len(step.values_i), dtype=np.intp)
            indices_j = indices_i + len(step.values_i)
        return _CompareRequest(
            pool_name=model.pool_name,
            indices_i=np.asarray(indices_i),
            indices_j=np.asarray(indices_j),
            values_i=np.asarray(step.values_i),
            values_j=np.asarray(step.values_j),
            judgments_per_task=model.judgments_per_task,
            strict=model.strict,
        )

    def _loop(self, outcomes: list[JobOutcome]) -> None:
        live = [t for t in self._tickets]
        while live:
            self._await_parked(live)
            still_live: list[JobTicket] = []
            for ticket in live:
                if ticket.state == "done":
                    self._settle(ticket, outcomes)
                else:
                    still_live.append(ticket)
            live = still_live
            if not live:
                break
            runnable = [t for t in live if t.request is not None]
            self.ticks += 1
            admitted = self._admit(runnable)
            if self.tracer.enabled:
                self.tracer.event(
                    "scheduler_tick",
                    tick=self.ticks,
                    live=len(live),
                    runnable=len(runnable),
                    admitted=len(admitted),
                    deferred=len(runnable) - len(admitted),
                )
            self._run_tick(admitted)

    def _run_tick(self, admitted: list[JobTicket]) -> None:
        """One tick's worth of service, in three timed phases.

        *settle* — every admitted request is resolved: journal replays
        and fast-path-ineligible requests serially, everything else
        through the fused buffer (cache lookups, one fused platform
        pass per flush, journal records framed into one group).
        *scatter* — the tick's journal group is committed with a single
        fsync, the deferred durable-cache writes flush behind it, and
        every request is checked to carry an answer or an error.
        *resume* — jobs are resumed in admission order: coroutine
        tickets by sending/throwing into their generators, thread
        tickets by the wake-and-await-park handshake.
        """
        journaling = self._journal is not None
        with self.tracer.span(
            "scheduler.tick.settle", tick=self.ticks, requests=len(admitted)
        ):
            if journaling:
                assert self._journal is not None
                self._journal.begin_group()
            try:
                self._settle_requests(admitted)
            finally:
                if journaling:
                    assert self._journal is not None
                    self._journal.commit_group()
        with self.tracer.span("scheduler.tick.scatter", tick=self.ticks):
            if isinstance(self.cache, DurableComparisonCache):
                self.cache.flush_pending()
            for ticket in admitted:
                request = ticket._inflight
                assert request is not None
                assert request.error is not None or request.answers is not None
        with self.tracer.span("scheduler.tick.resume", tick=self.ticks):
            self._resume(admitted)

    def _await_parked(self, live: list[JobTicket]) -> None:
        """Block until every live job thread is parked (blocked/done)."""
        if all(t._thread is None for t in live):
            # Coroutine tickets park synchronously on the scheduler's
            # own thread; there is nothing to wait for.
            return
        with self._cond:
            ok = self._cond.wait_for(
                lambda: all(t.state in ("blocked", "done") for t in live),
                timeout=_STALL_TIMEOUT_S,
            )
        if not ok:
            raise RuntimeError(
                "scheduler stalled: a job thread stopped cooperating "
                f"(states: {[t.state for t in live]})"
            )

    def _await_ticket_parked(self, ticket: JobTicket) -> None:
        with self._cond:
            ok = self._cond.wait_for(
                lambda: ticket.state in ("blocked", "done"),
                timeout=_STALL_TIMEOUT_S,
            )
        if not ok:
            raise RuntimeError(
                f"scheduler stalled waiting on job {ticket.index} "
                f"(state: {ticket.state})"
            )

    # ------------------------------------------------------------------
    # Admission control (fair share)
    # ------------------------------------------------------------------
    def _admit(self, runnable: list[JobTicket]) -> list[JobTicket]:
        """Fair-share admission: who gets platform service this tick.

        Per pool, parked requests are ordered least-served-first (ties
        to earliest admission) and granted whole — a job's batch is one
        logical step and is never split — until the ``quantum`` of
        tasks is spent.  The front request is always granted, so a
        request larger than the quantum still makes progress and no
        job starves: every deferral strictly improves the deferred
        job's priority relative to the jobs that were served.
        """
        admitted: list[JobTicket] = []
        by_pool: dict[str, list[JobTicket]] = {}
        for ticket in runnable:
            assert ticket.request is not None
            by_pool.setdefault(ticket.request.pool_name, []).append(ticket)
        for pool_name in sorted(by_pool):
            queue = sorted(
                by_pool[pool_name],
                key=lambda t: (t.served.get(pool_name, 0), t.index),
            )
            granted: list[JobTicket] = []
            budget = self.quantum
            used = 0
            for ticket in queue:
                assert ticket.request is not None
                size = ticket.request.size
                if granted and budget is not None and used + size > budget:
                    break
                granted.append(ticket)
                used += size
                ticket.served[pool_name] = ticket.served.get(pool_name, 0) + size
            if self.tracer.enabled:
                self.tracer.event(
                    "batch_coalesced",
                    pool=pool_name,
                    requests=len(granted),
                    tasks=used,
                    deferred=len(queue) - len(granted),
                    jobs=[t.index for t in granted],
                )
            admitted.extend(granted)
        return admitted

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    def _settle_requests(self, admitted: list[JobTicket]) -> None:
        """Resolve every admitted request, fusing where eligible.

        Walks the admitted tickets in admission order.  Journal replays
        and requests the platform fast path cannot take are served
        alone — but only after the fused buffer is flushed, so the
        relative order of platform effects matches serial service.
        Fused-eligible requests are looked up in the cache and their
        misses buffered; a request whose pairs overlap a buffered miss
        forces a flush first, so its lookup sees exactly the store
        state serial service would have produced.
        """
        pending: list[_FusedPending] = []
        pending_keys: set[tuple[str, str, int, int, int]] = set()
        for ticket in admitted:
            request = ticket.request
            assert request is not None
            ticket.request = None
            ticket._inflight = request
            queue = self._replay.get(ticket.index)
            if queue:
                self._flush_fused(pending, pending_keys)
                self._replay_serve(ticket, request, queue.popleft())
                continue
            assert ticket.platform is not None
            if not (
                self.fusion
                and ticket.platform.fast_path_eligible(
                    request.pool_name, request.judgments_per_task
                )
            ):
                self._flush_fused(pending, pending_keys)
                self._serve_serial(ticket, request)
                continue
            if pending_keys and self._overlaps_pending(pending_keys, ticket, request):
                self._flush_fused(pending, pending_keys)
            answers = np.zeros(request.size, dtype=bool)
            if self.cache is not None:
                hit_mask, cached = self.cache.lookup_batch(
                    ticket.fingerprint,
                    request.pool_name,
                    request.judgments_per_task,
                    request.indices_i,
                    request.indices_j,
                )
                answers[hit_mask] = cached[hit_mask]
            else:
                hit_mask = np.zeros(request.size, dtype=bool)
            miss = np.flatnonzero(~hit_mask)
            hits = int(request.size - len(miss))
            if self.tracer.enabled and hits:
                self.tracer.event(
                    "cache_hit",
                    job_index=ticket.index,
                    pool=request.pool_name,
                    hits=hits,
                    misses=len(miss),
                )
            if not len(miss):
                report = BatchReport(
                    answers=[bool(a) for a in answers],
                    physical_steps=0,
                    judgments_collected=0,
                    judgments_discarded=0,
                )
                if self._journal is not None:
                    self._journal_serve(
                        ticket, request, miss, None, answers, report, [], hits
                    )
                request.answers = answers
                request.report = report
                continue
            pending.append(_FusedPending(ticket, request, miss, answers, hits))
            if self.cache is not None:
                self._add_pending_keys(pending_keys, ticket, request, miss)
        self._flush_fused(pending, pending_keys)

    @staticmethod
    def _add_pending_keys(
        pending_keys: set[tuple[str, str, int, int, int]],
        ticket: JobTicket,
        request: _CompareRequest,
        miss: np.ndarray,
    ) -> None:
        key_of = ComparisonMemoCache._key
        for k in miss:
            key, _ = key_of(
                ticket.fingerprint,
                request.pool_name,
                request.judgments_per_task,
                int(request.indices_i[k]),
                int(request.indices_j[k]),
            )
            pending_keys.add(key)

    @staticmethod
    def _overlaps_pending(
        pending_keys: set[tuple[str, str, int, int, int]],
        ticket: JobTicket,
        request: _CompareRequest,
    ) -> bool:
        """Whether any pair of ``request`` is a buffered (unstored) miss."""
        key_of = ComparisonMemoCache._key
        for i, j in zip(request.indices_i, request.indices_j):
            key, _ = key_of(
                ticket.fingerprint,
                request.pool_name,
                request.judgments_per_task,
                int(i),
                int(j),
            )
            if key in pending_keys:
                return True
        return False

    def _flush_fused(
        self,
        pending: list[_FusedPending],
        pending_keys: set[tuple[str, str, int, int, int]],
    ) -> None:
        """Settle the buffered requests in one fused platform pass.

        Three sub-phases, all order-deterministic:

        1. *prepare* — each tenant platform reserves its own Philox
           judgment slice (``fast_batch_prepare``), in admission order,
           exactly as a serial serve would have;
        2. *decide* — judgments are concatenated across tenants per
           (pool, worker model) and resolved with **one** vectorized
           ``decide_from_uniforms`` call per group.  Each judgment
           carries its own pre-drawn uniforms, so grouping cannot
           change any answer — this is where the fusion speedup lives;
        3. *finalize* — charges, counters, journal records, and cache
           stores land per tenant in admission order, so ledger float
           accumulation and journal layout are bit-identical to
           one-at-a-time service.  A tenant whose finalize raises (a
           budget cap) keeps the error to itself; later tenants still
           settle, exactly as they would have serially.
        """
        if not pending:
            return
        pools: list[WorkerPool] = []
        plans: list[FastBatchPlan] = []
        for p in pending:
            platform = p.ticket.platform
            assert platform is not None
            pool = platform.pools[p.request.pool_name]
            required = np.full(
                len(p.miss), p.request.judgments_per_task, dtype=np.intp
            )
            plans.append(
                platform.fast_batch_prepare(
                    pool,
                    p.request.indices_i[p.miss],
                    p.request.indices_j[p.miss],
                    p.request.values_i[p.miss],
                    p.request.values_j[p.miss],
                    required,
                )
            )
            pools.append(pool)
        raws = self._fused_decide(pools, plans)
        journaling = self._journal is not None
        for k, p in enumerate(pending):
            ticket, request = p.ticket, p.request
            assert ticket.platform is not None
            ledger = ticket.platform.ledger
            tape: list[tuple[str, int, float]] = []
            if journaling and isinstance(ledger, _ChainedLedger):
                ledger.tape = tape
            try:
                fresh, report = ticket.platform.fast_batch_finalize(
                    pools[k], plans[k], raws[k]
                )
            except BaseException as exc:  # repro-lint: disable=ERR003 -- tunnelled to (and re-raised in) the job at its yield point
                # Not journaled: a failed settle settles nothing.  On
                # resume the re-run reaches this batch live (with the
                # restored state) and fails identically.
                request.error = exc
                continue
            finally:
                if journaling and isinstance(ledger, _ChainedLedger):
                    ledger.tape = None
            p.answers[p.miss] = fresh
            request.answers = p.answers
            request.report = report
            if journaling:
                self._journal_serve(
                    ticket, request, p.miss, fresh, p.answers, report, tape, p.hits
                )
            if self.cache is not None:
                self.cache.store_batch(
                    ticket.fingerprint,
                    request.pool_name,
                    request.judgments_per_task,
                    request.indices_i[p.miss],
                    request.indices_j[p.miss],
                    fresh,
                )
        if self.tracer.enabled:
            self.tracer.event(
                "batch_fused",
                requests=len(pending),
                tasks=int(sum(len(p.miss) for p in pending)),
                judgments=int(sum(plan.n_judgments for plan in plans)),
                pools=sorted({p.request.pool_name for p in pending}),
                jobs=[p.ticket.index for p in pending],
            )
        pending.clear()
        pending_keys.clear()

    @staticmethod
    def _fused_decide(
        pools: list[WorkerPool], plans: list[FastBatchPlan]
    ) -> list[np.ndarray]:
        """Raw model answers for many tenants' plans, fused per model.

        Pools are shared objects across tenant views, so grouping by
        ``(pool identity, model group)`` concatenates every tenant's
        judgments for the same worker model into one decide call.
        ``decide_from_uniforms`` is element-wise (each judgment reads
        only its own row), so the fused answers are bit-identical to
        per-plan decides.
        """
        raws = [np.empty(plan.n_judgments, dtype=bool) for plan in plans]
        group_models: dict[int, tuple[list[Any], np.ndarray]] = {}
        members: dict[tuple[int, int], list[tuple[int, Any, int]]] = {}
        for k, plan in enumerate(plans):
            pool = pools[k]
            cached = group_models.get(id(pool))
            if cached is None:
                cached = fast_model_groups(pool)
                group_models[id(pool)] = cached
            models, group_of_worker = cached
            if len(models) == 1:
                members.setdefault((id(pool), 0), []).append(
                    (k, slice(None), plan.n_judgments)
                )
                continue
            judgment_group = group_of_worker[plan.worker_pos]
            for gid in range(len(models)):
                rows = np.flatnonzero(judgment_group == gid)
                if len(rows):
                    members.setdefault((id(pool), gid), []).append(
                        (k, rows, len(rows))
                    )
        for (pool_key, gid), entries in members.items():
            model = group_models[pool_key][0][gid]
            if len(entries) == 1:
                k, sel, _count = entries[0]
                plan = plans[k]
                raws[k][sel] = model.decide_from_uniforms(
                    plan.shown_vi[sel],
                    plan.shown_vj[sel],
                    plan.uniforms[sel, 1:3],
                    indices_i=plan.shown_ii[sel],
                    indices_j=plan.shown_jj[sel],
                )
                continue
            raw = np.asarray(
                model.decide_from_uniforms(
                    np.concatenate([plans[k].shown_vi[sel] for k, sel, _ in entries]),
                    np.concatenate([plans[k].shown_vj[sel] for k, sel, _ in entries]),
                    np.concatenate(
                        [plans[k].uniforms[sel, 1:3] for k, sel, _ in entries]
                    ),
                    indices_i=np.concatenate(
                        [plans[k].shown_ii[sel] for k, sel, _ in entries]
                    ),
                    indices_j=np.concatenate(
                        [plans[k].shown_jj[sel] for k, sel, _ in entries]
                    ),
                ),
                dtype=bool,
            )
            offset = 0
            for k, sel, count in entries:
                raws[k][sel] = raw[offset : offset + count]
                offset += count
        return raws

    def _resume(self, admitted: list[JobTicket]) -> None:
        """Deliver every settled request back to its job, in admission
        order: coroutine tickets are advanced inline (send / throw at
        the generator's yield point), thread tickets keep the strict
        wake-then-await-park handshake so shared-state mutations stay
        serial."""
        for ticket in admitted:
            request = ticket._inflight
            assert request is not None
            ticket._inflight = None
            if ticket.cancel_requested and request.error is None:
                # The resume point is the cancellation point: instead
                # of the answers the job paid for, it receives the
                # typed cancel error (the charges stand — ledgers are
                # authoritative; see JobTicket.cancel).
                request.error = JobCancelledError(ticket.index)
            if ticket._gen is None:
                self._wake(ticket, request)
                self._await_ticket_parked(ticket)
                continue
            ticket.state = "running"
            if request.error is not None:
                self._advance(ticket, "throw", request.error)
            elif (
                request.strict
                and request.report is not None
                and request.report.degraded
            ):
                # Where PlatformWorkerModel.decide would have raised.
                self._advance(ticket, "throw", DegradedBatchError(request.report))
            else:
                self._advance(ticket, "send", request.answers)

    def _serve_serial(self, ticket: JobTicket, request: _CompareRequest) -> None:
        """Resolve one request alone (journal / cache / platform).

        The ``fusion=off`` escape hatch and the catch-all for requests
        the fast path cannot settle (gold probes armed, active fault
        plans, capped private ledgers, fallback pools): the full
        ``compare_batch`` machinery runs with the job's own RNG stream,
        ledger, and fault plan, exactly as before fusion existed.
        """
        answers = np.zeros(request.size, dtype=bool)
        report: BatchReport | None = None
        if self.cache is not None:
            hit_mask, cached = self.cache.lookup_batch(
                ticket.fingerprint,
                request.pool_name,
                request.judgments_per_task,
                request.indices_i,
                request.indices_j,
            )
            answers[hit_mask] = cached[hit_mask]
        else:
            hit_mask = np.zeros(request.size, dtype=bool)
        miss = np.flatnonzero(~hit_mask)
        hits = int(request.size - len(miss))
        if self.tracer.enabled and hits:
            self.tracer.event(
                "cache_hit",
                job_index=ticket.index,
                pool=request.pool_name,
                hits=hits,
                misses=len(miss),
            )
        fresh: np.ndarray | None = None
        tape: list[tuple[str, int, float]] = []
        if len(miss):
            assert ticket.platform is not None
            ledger = ticket.platform.ledger
            if self._journal is not None and isinstance(ledger, _ChainedLedger):
                ledger.tape = tape
            try:
                fresh, report = CrowdPlatform.compare_batch(  # repro-lint: disable=SCH001 -- the sanctioned fusion=off escape hatch
                    ticket.platform,
                    request.pool_name,
                    request.indices_i[miss],
                    request.indices_j[miss],
                    request.values_i[miss],
                    request.values_j[miss],
                    judgments_per_task=request.judgments_per_task,
                )
            except BaseException as exc:  # repro-lint: disable=ERR003 -- tunnelled to (and re-raised in) the job
                # Not journaled: a failed serve settles nothing.  On
                # resume the re-run reaches this serve live (with the
                # restored RNG/ledger state) and fails identically.
                request.error = exc
                return
            finally:
                if self._journal is not None and isinstance(ledger, _ChainedLedger):
                    ledger.tape = None
            answers[miss] = fresh
        if report is None:
            # Every pair was served from the cache: no physical steps
            # ran and nothing was paid.
            report = BatchReport(
                answers=[bool(a) for a in answers],
                physical_steps=0,
                judgments_collected=0,
                judgments_discarded=0,
            )
        # Ordering discipline: the journal record must be durable
        # *before* the durable cache commits these judgments, so the
        # store can never hold an entry whose journal record was lost
        # to a crash (which would flip a miss to a hit on resume and
        # break ledger parity).
        if self._journal is not None:
            self._journal_serve(ticket, request, miss, fresh, answers, report, tape, hits)
        if self.cache is not None and len(miss):
            assert fresh is not None
            self.cache.store_batch(
                ticket.fingerprint,
                request.pool_name,
                request.judgments_per_task,
                request.indices_i[miss],
                request.indices_j[miss],
                fresh,
            )
        request.answers = answers
        request.report = report

    def _journal_serve(
        self,
        ticket: JobTicket,
        request: _CompareRequest,
        miss: np.ndarray,
        fresh: np.ndarray | None,
        answers: np.ndarray,
        report: BatchReport,
        tape: list[tuple[str, int, float]],
        hits: int,
    ) -> None:
        """Durably record one served batch (fsynced before return)."""
        assert self._journal is not None
        touched = bool(len(miss))
        assert ticket.platform is not None
        record = self._journal.append(
            "serve",
            seq=self._journal_seq,
            job_index=ticket.index,
            pool=request.pool_name,
            judgments=request.judgments_per_task,
            indices_i=[int(v) for v in request.indices_i],
            indices_j=[int(v) for v in request.indices_j],
            miss=[int(v) for v in miss],
            fresh=[bool(v) for v in fresh] if fresh is not None else [],
            answers=[bool(v) for v in answers],
            hits=hits,
            charges=[[label, count, cost] for label, count, cost in tape],
            report=_report_to_state(report) if touched else None,
            platform=_capture_platform_state(ticket.platform) if touched else None,
        )
        self._journal_seq += 1
        if self.tracer.enabled:
            self.tracer.event(
                "journal_append",
                job_index=ticket.index,
                pool=request.pool_name,
                seq=record["seq"],
                tasks=request.size,
                misses=len(miss),
            )
        self.tracer.count("durability.journal_appends")

    def _replay_serve(
        self, ticket: JobTicket, request: _CompareRequest, record: JournalRecord
    ) -> None:
        """Serve one request from its journal record — no platform spend.

        Validates that the live request matches the journaled one (the
        determinism contract guarantees it for an identical workload),
        replays the charge tape through the real ledgers, restores the
        platform's post-batch state, and rebuilds the report the job
        originally saw.
        """
        expectations: list[tuple[str, object, object]] = [
            ("pool", record["pool"], request.pool_name),
            ("judgments", record["judgments"], request.judgments_per_task),
            ("indices_i", record["indices_i"], [int(v) for v in request.indices_i]),
            ("indices_j", record["indices_j"], [int(v) for v in request.indices_j]),
        ]
        for name, recorded, actual in expectations:
            if recorded != actual:
                raise JournalMismatchError(f"request.{name}", recorded, actual)
        answers = np.asarray(record["answers"], dtype=bool)
        miss = np.asarray(record["miss"], dtype=np.intp)
        hits = int(record["hits"])
        if self.cache is not None:
            # Mirror the original lookup's traffic counters and event.
            self.cache.hits += hits
            self.cache.misses += len(miss)
            if self.tracer.enabled and hits:
                self.tracer.event(
                    "cache_hit",
                    job_index=ticket.index,
                    pool=request.pool_name,
                    hits=hits,
                    misses=len(miss),
                )
        assert ticket.platform is not None
        for label, count, unit_cost in record["charges"]:
            ticket.platform.ledger.charge(str(label), int(count), float(unit_cost))
            self.replayed_operations += int(count)
            self.replayed_money += int(count) * float(unit_cost)
        if record["platform"] is not None:
            _restore_platform_state(ticket.platform, record["platform"])
        if len(miss):
            report = _report_from_state(record["report"])
            if self.cache is not None:
                # Replay rebuilds the store from records the original
                # run already journaled; there is nothing new to append.
                self.cache.store_batch(  # repro-lint: disable=FLOW003 -- replay of journaled data
                    ticket.fingerprint,
                    request.pool_name,
                    request.judgments_per_task,
                    request.indices_i[miss],
                    request.indices_j[miss],
                    np.asarray(record["fresh"], dtype=bool),
                )
        else:
            report = BatchReport(
                answers=[bool(a) for a in answers],
                physical_steps=0,
                judgments_collected=0,
                judgments_discarded=0,
            )
        self.replayed_batches += 1
        if self.tracer.enabled:
            self.tracer.event(
                "resume_replayed",
                job_index=ticket.index,
                pool=request.pool_name,
                seq=record.get("seq"),
                tasks=request.size,
                misses=len(miss),
            )
        self.tracer.count("durability.resume_replays")
        request.answers = answers
        request.report = report

    def _wake(self, ticket: JobTicket, request: _CompareRequest) -> None:
        with self._cond:
            ticket.state = "running"
        request.done.set()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    #: How long the shutdown reaper waits for a woken job thread to
    #: exit before declaring it leaked.  A class attribute so tests can
    #: shrink the grace period.
    _REAP_TIMEOUT_S = 1.0

    def _reap_threads(self) -> None:
        """Join surviving job threads on the way out of :meth:`run`.

        On a clean run every thread has already exited; this only has
        work when the loop was torn down mid-flight (a journal
        mismatch, a stalled peer, an interrupt) with thread tickets
        still parked on unserved requests.  Each one is failed with a
        typed error and woken so it can unwind; anything still alive
        after the grace period is surfaced as one
        :class:`~repro.scheduler.errors.SchedulerThreadLeakWarning`
        rather than silently leaking a daemon thread.
        """
        stragglers: list[JobTicket] = []
        for ticket in self._tickets:
            thread = ticket._thread
            if thread is None or not thread.is_alive():
                continue
            request = ticket.request if ticket.request is not None else ticket._inflight
            if request is not None and not request.done.is_set():
                if request.error is None and request.answers is None:
                    request.error = RuntimeError(
                        f"scheduler shut down before serving job {ticket.index}"
                    )
                request.done.set()
            thread.join(self._REAP_TIMEOUT_S)
            if thread.is_alive():
                stragglers.append(ticket)
        if stragglers:
            warnings.warn(
                SchedulerThreadLeakWarning([t.index for t in stragglers]),
                stacklevel=3,
            )

    # ------------------------------------------------------------------
    # Settling / telemetry merge
    # ------------------------------------------------------------------
    def _settle(self, ticket: JobTicket, outcomes: list[JobOutcome]) -> None:
        if ticket._thread is not None:
            ticket._thread.join(timeout=_STALL_TIMEOUT_S)
        error = ticket._error
        if error is None:
            status: Literal["ok", "budget_exceeded", "cancelled", "failed"] = "ok"
        elif isinstance(error, BudgetExceededError):
            status = "budget_exceeded"
        elif isinstance(error, JobCancelledError):
            status = "cancelled"
        else:
            status = "failed"
        outcome = JobOutcome(
            ticket=ticket,
            settle_index=len(outcomes),
            status=status,
            result=ticket._result,
            error=error,
        )
        ticket.outcome = outcome
        outcomes.append(outcome)
        if self._journal is not None and ticket.index not in self._settled_journaled:
            self._journal.append(
                "settled",
                job_index=ticket.index,
                settle_index=outcome.settle_index,
                status=status,
                cost=outcome.cost,
            )
            if self.tracer.enabled:
                self.tracer.event(
                    "checkpoint_written",
                    job_index=ticket.index,
                    settle_index=outcome.settle_index,
                    status=status,
                )
        if self.tracer.enabled:
            self.tracer.event(
                "job_settled",
                job_index=ticket.index,
                settle_index=outcome.settle_index,
                status=status,
                tenant=ticket.tenant,
                cost=round(outcome.cost, 9),
            )

    def _replay_job_trace(self, ticket: JobTicket) -> None:
        """Replay one job's buffered records into the scheduler trace.

        Mirrors the parallel engine's shard replay: job-local ``seq`` /
        ``t`` are preserved as ``job_seq`` / ``job_t`` and the parent
        stamps its own ordering, so the merged trace is totally ordered
        with per-job provenance.  Called in admission order.
        """
        if not self.tracer.enabled or ticket.tracer is NULL_TRACER:
            return
        for record in ticket.tracer.records:
            fields = dict(record)
            kind = fields.pop("kind", "unknown")
            fields["job_seq"] = fields.pop("seq", None)
            fields["job_t"] = fields.pop("t", None)
            fields.pop("job_index", None)
            self.tracer.event(kind, job_index=ticket.index, **fields)
        for name, counter in ticket.tracer.metrics.counters.items():
            self.tracer.metrics.counter(name).add(counter.value)
        for name, timer in ticket.tracer.metrics.timers.items():
            merged = self.tracer.metrics.timer(name)
            merged.total_seconds += timer.total_seconds
            merged.count += timer.count
