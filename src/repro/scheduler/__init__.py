"""Multi-job scheduling over shared crowd pools.

The serving layer the paper's Section 1 gestures at: a host system
answering many crowd queries at once submits jobs (any class speaking
the uniform ``submit()/settle()`` protocol of :mod:`repro.jobs`) to
one :class:`CrowdScheduler`, which settles them cooperatively against
shared worker pools with fair-share admission, per-tenant budget
isolation, and a cross-job comparison memo cache.  The HTTP serving
layer (:mod:`repro.service_http`) runs one scheduler *generation* per
admitted batch on top of this module.

See ``docs/SCHEDULER.md`` for the event loop, fairness policy, cache
semantics, and the determinism contract.
"""

from .cache import ComparisonMemoCache, DurableComparisonCache, fingerprint_instance
from .engine import CrowdScheduler, JobOutcome, JobTicket
from .errors import (
    JobCancelledError,
    SchedulerSaturatedError,
    SchedulerThreadLeakWarning,
)

__all__ = [
    "CrowdScheduler",
    "JobTicket",
    "JobOutcome",
    "ComparisonMemoCache",
    "DurableComparisonCache",
    "fingerprint_instance",
    "JobCancelledError",
    "SchedulerSaturatedError",
    "SchedulerThreadLeakWarning",
]
