"""Cross-job comparison memo cache.

A :class:`~repro.core.oracle.ComparisonOracle` already memoizes within
one job — the paper's algorithms never re-pay for a pair they have
already compared.  But a host system answering many queries over the
*same catalog* (the ISSUE's CrowdDB scenario) re-buys every judgment
from scratch, because each job builds a fresh oracle.

:class:`ComparisonMemoCache` closes that gap at the scheduler layer: a
settled comparison is stored under

``(instance fingerprint, pool name, judgments per task, unordered pair)``

so any later job over a byte-identical catalog, asking the same worker
class at the same redundancy, reuses the answer for free.  The worker
class is part of the key on purpose — a naive-pool majority and an
expert judgment over the same pair are *different products* with
different error guarantees, and must never substitute for one another.

Determinism note: serving answers from the cache skips the platform
machinery (no RNG draws, no payment), so a cache-enabled schedule is
*not* bit-identical to isolated execution — it is strictly cheaper.
Runs with the cache disabled are bit-identical to isolated per-job
execution; see ``docs/SCHEDULER.md`` for the full contract.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..core.instance import ProblemInstance
from ..durability.store import PersistentComparisonStore
from ..telemetry import Tracer, resolve_tracer

__all__ = [
    "fingerprint_instance",
    "ComparisonMemoCache",
    "DurableComparisonCache",
]


def fingerprint_instance(instance: ProblemInstance | np.ndarray) -> str:
    """Content hash identifying a catalog for cache keying.

    Two instances share a fingerprint exactly when their value arrays
    are byte-identical (same dtype, shape, and contents) — the only
    condition under which reusing a judgment is sound.
    """
    values = (
        instance.values
        if isinstance(instance, ProblemInstance)
        else np.asarray(instance)
    )
    values = np.ascontiguousarray(values)
    digest = hashlib.sha256()
    digest.update(str(values.dtype).encode("ascii"))
    digest.update(str(values.shape).encode("ascii"))
    digest.update(values.tobytes())
    return digest.hexdigest()


#: One cache key: (fingerprint, pool, judgments_per_task, lo, hi).
_Key = tuple[str, str, int, int, int]


class ComparisonMemoCache:
    """Memo of settled pairwise answers, shared across jobs.

    Pairs are stored unordered (``lo < hi``) with the answer normalised
    to "``lo`` wins", so ``(3, 7)`` and ``(7, 3)`` hit the same entry.
    ``hits`` / ``misses`` count *lookups*, giving the judgments-saved
    numerator the benchmark and the ``cache_hit`` telemetry report.
    The optional ``tracer`` receives ``cache_invalidated`` events (and,
    in the durable subclass, ``cache_persisted``); it defaults to the
    ambient tracer, a no-op unless one was activated.
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self._store: dict[_Key, bool] = {}
        self.hits = 0
        self.misses = 0
        self.tracer = resolve_tracer(tracer)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    @staticmethod
    def _key(
        fingerprint: str, pool_name: str, judgments_per_task: int, i: int, j: int
    ) -> tuple[_Key, bool]:
        """Normalised key plus whether the pair was flipped to make it."""
        if i <= j:
            return (fingerprint, pool_name, judgments_per_task, i, j), False
        return (fingerprint, pool_name, judgments_per_task, j, i), True

    def lookup_batch(
        self,
        fingerprint: str,
        pool_name: str,
        judgments_per_task: int,
        indices_i: np.ndarray,
        indices_j: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve a pair batch against the cache.

        Returns ``(hit_mask, answers)``: positions where ``hit_mask``
        is ``True`` carry a valid cached answer (``True`` = first
        element of the pair wins); the rest must be bought fresh.
        Updates the hit/miss counters.
        """
        size = len(indices_i)
        hit_mask = np.zeros(size, dtype=bool)
        answers = np.zeros(size, dtype=bool)
        for k in range(size):
            key, flipped = self._key(
                fingerprint,
                pool_name,
                judgments_per_task,
                int(indices_i[k]),
                int(indices_j[k]),
            )
            lo_wins = self._store.get(key)
            if lo_wins is None:
                self.misses += 1
                continue
            self.hits += 1
            hit_mask[k] = True
            answers[k] = (not lo_wins) if flipped else lo_wins
        return hit_mask, answers

    def store_batch(
        self,
        fingerprint: str,
        pool_name: str,
        judgments_per_task: int,
        indices_i: np.ndarray,
        indices_j: np.ndarray,
        answers: np.ndarray,
    ) -> None:
        """Record freshly bought answers (``True`` = first wins)."""
        entries: list[tuple[_Key, bool]] = []
        for k in range(len(indices_i)):
            key, flipped = self._key(
                fingerprint,
                pool_name,
                judgments_per_task,
                int(indices_i[k]),
                int(indices_j[k]),
            )
            first_wins = bool(answers[k])
            lo_wins = (not first_wins) if flipped else first_wins
            self._store[key] = lo_wins
            entries.append((key, lo_wins))
        self._ingest(entries)

    def _ingest(self, entries: list[tuple[_Key, bool]]) -> None:
        """Hook for subclasses that mirror stores to a backing medium."""

    # ------------------------------------------------------------------
    # Introspection / invalidation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def invalidate(
        self, fingerprint: str | None = None, pool_name: str | None = None
    ) -> int:
        """Drop cached answers; returns how many entries were removed.

        The invalidation hook for catalogs that change or pools whose
        workforce was re-calibrated: ``invalidate()`` clears everything,
        ``invalidate(fingerprint=...)`` one catalog,
        ``invalidate(pool_name=...)`` one worker class, and both
        together their intersection.  Counters are preserved — they
        describe traffic, not contents.  Emits one ``cache_invalidated``
        telemetry event carrying the selector and the eviction count.
        """
        if fingerprint is None and pool_name is None:
            removed = len(self._store)
            self._store.clear()
        else:
            doomed = [
                key
                for key in self._store
                if (fingerprint is None or key[0] == fingerprint)
                and (pool_name is None or key[1] == pool_name)
            ]
            for key in doomed:
                del self._store[key]
            removed = len(doomed)
        if self.tracer.enabled:
            self.tracer.event(
                "cache_invalidated",
                fingerprint=fingerprint[:12] if fingerprint else None,
                pool=pool_name,
                removed=removed,
            )
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComparisonMemoCache(entries={len(self._store)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class DurableComparisonCache(ComparisonMemoCache):
    """A memo cache backed by a :class:`PersistentComparisonStore`.

    Construction warm-loads every stored judgment into memory (the
    count is kept on :attr:`warm_entries`); every ``store_batch``
    write-through commits the new entries to SQLite in one transaction,
    and ``invalidate`` evicts from both layers.  Lookups never touch
    the database — the in-memory dict is always a faithful image of the
    store, so the hot path is identical to the plain cache.

    The write-through is intentionally *after* the in-memory update and
    emits one ``cache_persisted`` event (plus the
    ``durability.cache_persisted`` counter) per committed batch.  When
    the scheduler journals a run, it appends the journal record before
    calling ``store_batch``, so the database can never hold a judgment
    whose provenance record could be torn away (see
    ``docs/DURABILITY.md``).
    """

    def __init__(
        self, store: PersistentComparisonStore, tracer: Tracer | None = None
    ) -> None:
        super().__init__(tracer=tracer)
        self.store = store
        self._store.update(store.load())
        #: Entries warm-loaded from disk at construction.
        self.warm_entries = len(self._store)
        #: When ``True`` (set by the scheduler while journaling), the
        #: SQLite write-through is buffered and only lands at
        #: :meth:`flush_pending` — after the tick's journal group is
        #: durable.  In-memory visibility is immediate either way.
        self.deferred = False
        self._pending_entries: list[tuple[_Key, bool]] = []

    def _ingest(self, entries: list[tuple[_Key, bool]]) -> None:
        if self.deferred:
            self._pending_entries.extend(entries)
            return
        self._write_through(entries)

    def _write_through(self, entries: list[tuple[_Key, bool]]) -> None:
        written = self.store.write_entries(entries)
        if written and self.tracer.enabled:
            self.tracer.event("cache_persisted", entries=written)
        if written:
            self.tracer.count("durability.cache_persisted", written)

    def flush_pending(self) -> int:
        """Commit the deferred write-through; returns entries flushed.

        Call only after the journal records covering these entries are
        durable — the journal-before-store ordering contract.
        """
        entries, self._pending_entries = self._pending_entries, []
        if entries:
            self._write_through(entries)
        return len(entries)

    def invalidate(
        self, fingerprint: str | None = None, pool_name: str | None = None
    ) -> int:
        self.flush_pending()
        removed = super().invalidate(fingerprint=fingerprint, pool_name=pool_name)
        self.store.invalidate(fingerprint=fingerprint, pool_name=pool_name)
        return removed

    def close(self) -> None:
        """Close the backing store (committed entries stay on disk)."""
        self.flush_pending()
        self.store.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurableComparisonCache(entries={len(self._store)}, "
            f"warm={self.warm_entries}, path={str(self.store.path)!r})"
        )
