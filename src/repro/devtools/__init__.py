"""Developer tooling for the reproduction: project-invariant checks.

The only subsystem today is :mod:`repro.devtools.lint` — the
``repro-lint`` static-analysis pass that proves the project's
reproducibility, fork-safety, and telemetry invariants hold without
running anything.  See ``docs/STATIC_ANALYSIS.md``.
"""

from .lint import LintEngine, LintReport, Rule, Violation, default_rules, run_lint

__all__ = [
    "LintEngine",
    "LintReport",
    "Rule",
    "Violation",
    "default_rules",
    "run_lint",
]
