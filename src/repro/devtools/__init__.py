"""Developer tooling for the reproduction: project-invariant checks.

Two static-analysis stages (see ``docs/STATIC_ANALYSIS.md``):

* :mod:`repro.devtools.lint` — ``repro-lint``, per-file AST rules for
  reproducibility, fork-safety, and telemetry invariants.
* :mod:`repro.devtools.analyze` — ``repro-analyze``, whole-program
  symbol-table/call-graph analysis running the ``FLOW0xx`` pack
  (RNG lineage, telemetry closure, journal-before-store ordering,
  API-surface integrity).

:mod:`repro.devtools.budget` is the suppression-debt ratchet both
CLIs expose as ``--budget``.
"""

from .analyze import AnalysisEngine, AnalysisResult, FlowRule, run_analysis
from .budget import check_budget, count_suppressions, load_budget
from .lint import LintEngine, LintReport, Rule, Violation, default_rules, run_lint

__all__ = [
    "AnalysisEngine",
    "AnalysisResult",
    "FlowRule",
    "LintEngine",
    "LintReport",
    "Rule",
    "Violation",
    "check_budget",
    "count_suppressions",
    "default_rules",
    "load_budget",
    "run_analysis",
    "run_lint",
]
