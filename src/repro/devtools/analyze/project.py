"""Whole-program model for ``repro-analyze``: modules and symbols.

The lint stage sees one file at a time; the analysis stage sees the
*project* — every ``src``-context module parsed into a
:class:`ModuleInfo` (imports, top-level bindings, functions, classes,
``__all__``) and collected into a :class:`Project` that can resolve a
name through re-export chains to the module that actually defines it.
The FLOW rules and the call graph are built on top of this model.

Module names are derived the same way Python would import them: a
file's dotted name is its path relative to the innermost directory
*without* an ``__init__.py`` (so ``src/repro/core/oracle.py`` is
``repro.core.oracle`` because ``src/`` is not a package).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..lint.framework import SourceFile

__all__ = [
    "ImportBinding",
    "ModuleInfo",
    "Project",
    "module_name_for_path",
]

#: Maximum re-export chain length :meth:`Project.resolve` will follow.
_RESOLVE_DEPTH = 16


@dataclass(frozen=True)
class ImportBinding:
    """One imported name bound at a module's top level."""

    alias: str
    #: Fully-qualified target: ``repro.core.find_max`` for
    #: ``from repro.core import find_max``, ``numpy`` for ``import numpy as np``.
    target: str
    #: Source module for ``from X import y`` (``None`` for plain imports).
    module: str | None
    #: Original symbol name for ``from X import y`` (``None`` for plain imports).
    symbol: str | None
    line: int


@dataclass
class ModuleInfo:
    """One parsed module plus its top-level symbol table."""

    name: str
    is_package: bool
    source: SourceFile
    imports: dict[str, ImportBinding] = field(default_factory=dict)
    #: Qualified name within the module (``func`` / ``Class.method``) -> def node.
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: Class name -> base-class expressions rendered as dotted strings.
    class_bases: dict[str, list[str]] = field(default_factory=dict)
    #: Top-level assigned names (module constants) -> line.
    top_bindings: dict[str, int] = field(default_factory=dict)
    #: ``__all__`` entries as ``(name, line)``, or ``None`` when undeclared.
    exports: list[tuple[str, int]] | None = None

    @property
    def package(self) -> str:
        """The package relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""

    def export_names(self) -> list[str]:
        """The declared ``__all__`` names (empty when undeclared)."""
        return [name for name, _ in self.exports or []]

    def binds(self, symbol: str) -> bool:
        """Whether ``symbol`` is bound at this module's top level."""
        return (
            symbol in self.imports
            or symbol in self.functions
            or symbol in self.classes
            or symbol in self.top_bindings
        )


def module_name_for_path(path: Path) -> str:
    """The dotted import name of ``path`` (walks up ``__init__.py`` chains)."""
    path = Path(path)
    parts = [path.parent.name if path.name == "__init__.py" else path.stem]
    anchor = path.parent.parent if path.name == "__init__.py" else path.parent
    while anchor.name and (anchor / "__init__.py").is_file():
        parts.append(anchor.name)
        anchor = anchor.parent
    return ".".join(reversed(parts))


def _module_name_for_key(key: str) -> tuple[str, bool]:
    """Syntactic module name for an in-memory fixture key like ``repro/api.py``."""
    parts = list(Path(key).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    return ".".join(parts), is_package


def _dotted(node: ast.expr) -> str:
    """Render ``a.b.c`` attribute/name chains (empty string otherwise)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


def _resolve_relative(package: str, level: int, module: str | None) -> str:
    """The absolute module a ``from ...X import y`` statement names."""
    if level == 0:
        return module or ""
    base_parts = package.split(".") if package else []
    # level=1 is the current package; each extra level climbs one parent.
    if level - 1 > 0:
        base_parts = base_parts[: len(base_parts) - (level - 1)]
    base = ".".join(base_parts)
    if module:
        return f"{base}.{module}" if base else module
    return base


def _extract_exports(value: ast.expr) -> list[tuple[str, int]]:
    """``(name, line)`` pairs from an ``__all__`` list/tuple literal."""
    names: list[tuple[str, int]] = []
    if isinstance(value, (ast.List, ast.Tuple)):
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                names.append((elt.value, elt.lineno))
    return names


def _collect_module(name: str, is_package: bool, source: SourceFile) -> ModuleInfo:
    """Build the top-level symbol table of one parsed module."""
    info = ModuleInfo(name=name, is_package=is_package, source=source)
    package = info.package
    for stmt in source.tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.imports[local] = ImportBinding(
                    alias=local, target=target, module=None, symbol=None, line=stmt.lineno
                )
        elif isinstance(stmt, ast.ImportFrom):
            source_module = _resolve_relative(package, stmt.level, stmt.module)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = ImportBinding(
                    alias=local,
                    target=f"{source_module}.{alias.name}" if source_module else alias.name,
                    module=source_module or None,
                    symbol=alias.name,
                    line=alias.lineno if hasattr(alias, "lineno") else stmt.lineno,
                )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = stmt
            info.class_bases[stmt.name] = [
                base for base in (_dotted(b) for b in stmt.bases) if base
            ]
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.functions[f"{stmt.name}.{item.name}"] = item
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets: list[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            else:
                targets = [stmt.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__all__" and stmt.value is not None:
                    entries = _extract_exports(stmt.value)
                    if isinstance(stmt, ast.AugAssign):
                        info.exports = (info.exports or []) + entries
                    else:
                        info.exports = entries
                else:
                    info.top_bindings.setdefault(target.id, stmt.lineno)
    return info


@dataclass
class Project:
    """Every analyzed module, keyed by dotted name."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)

    @classmethod
    def from_sources(cls, named_sources: Iterable[tuple[str, bool, SourceFile]]) -> "Project":
        """Build from ``(module_name, is_package, source)`` triples."""
        project = cls()
        for name, is_package, source in named_sources:
            project.modules[name] = _collect_module(name, is_package, source)
        return project

    @classmethod
    def from_files(cls, files: Iterable[tuple[Path, SourceFile]]) -> "Project":
        """Build from on-disk files already parsed into sources."""
        return cls.from_sources(
            (module_name_for_path(path), path.name == "__init__.py", source)
            for path, source in files
        )

    @classmethod
    def from_texts(cls, files: dict[str, str]) -> "Project":
        """Build from in-memory fixtures: ``{"repro/api.py": source}``."""
        triples = []
        for key in sorted(files):
            name, is_package = _module_name_for_key(key)
            source = SourceFile.from_text(files[key], context="src", path=key)
            triples.append((name, is_package, source))
        return cls.from_sources(triples)

    def __iter__(self) -> Iterator[ModuleInfo]:
        return iter(sorted(self.modules.values(), key=lambda m: m.name))

    def by_display_path(self) -> dict[str, SourceFile]:
        """Display path -> source, for suppression lookup."""
        return {module.source.display_path: module.source for module in self}

    def resolve(self, module_name: str, symbol: str) -> str | None:
        """Chase ``symbol`` through re-export chains to its defining module.

        Returns the fully-qualified name of the definition
        (``repro.core.maxfinder.find_max``), the import target verbatim
        when the chain leaves the project (``numpy.random.default_rng``),
        or ``None`` when the starting module is in the project but does
        not bind the symbol at all.
        """
        current_module, current_symbol = module_name, symbol
        for _ in range(_RESOLVE_DEPTH):
            info = self.modules.get(current_module)
            if info is None:
                return f"{current_module}.{current_symbol}"
            if (
                current_symbol in info.functions
                or current_symbol in info.classes
                or current_symbol in info.top_bindings
            ):
                return f"{current_module}.{current_symbol}"
            binding = info.imports.get(current_symbol)
            if binding is None:
                return None
            if binding.module is None:
                return binding.target
            current_module, current_symbol = binding.module, binding.symbol or current_symbol
        return f"{current_module}.{current_symbol}"
