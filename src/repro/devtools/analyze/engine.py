"""The ``repro-analyze`` engine: parse, model, run FLOW rules, report.

Mirrors :class:`repro.devtools.lint.framework.LintEngine` one level up:
instead of running per-file rules over each source, it parses every
``src``-context file, builds the :class:`Project` symbol table and
:class:`CallGraph`, runs the project-wide FLOW pack, then applies the
*same* same-line suppression mechanism and audits unused FLOW
suppressions with the lint stage's ``LINT001`` meta-diagnostic.
(``LINT002``/``LINT003`` stay with ``repro-lint``, which audits every
suppression comment regardless of stage.)

Files outside the ``src`` context are skipped entirely: the FLOW rules
model library invariants, and test/example fixtures would only add
noise to the call graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..lint.framework import META_UNUSED, Context, LintReport, SourceFile, Violation
from .callgraph import CallGraph, build_call_graph
from .framework import FlowRule, default_flow_rules
from .project import Project

__all__ = [
    "ANALYSIS_GRAPH_SCHEMA",
    "AnalysisEngine",
    "AnalysisResult",
    "build_graph_payload",
    "run_analysis",
]

#: Schema tag of the ``results/ANALYSIS_graph.json`` artifact.
ANALYSIS_GRAPH_SCHEMA = "repro.analysis_graph/v1"


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    report: LintReport
    project: Project
    graph: CallGraph
    #: Per-rule ``# repro-lint: disable`` counts over the analyzed files
    #: (every stage's IDs — the suppression-debt ledger).
    suppression_counts: dict[str, int] = field(default_factory=dict)


class AnalysisEngine:
    """Runs the FLOW pack over a project and applies suppressions."""

    def __init__(self, rules: Sequence[type[FlowRule]] | None = None):
        self.rules: list[type[FlowRule]] = (
            list(rules) if rules is not None else default_flow_rules()
        )

    def analyze_project(
        self,
        project: Project,
        graph: CallGraph | None = None,
        parse_errors: Sequence[tuple[str, str]] = (),
        files_scanned: int | None = None,
    ) -> AnalysisResult:
        """Run the rule pack over an already-built project."""
        if graph is None:
            graph = build_call_graph(project)

        raw: list[Violation] = []
        for rule_cls in self.rules:
            raw.extend(rule_cls(project, graph).check())

        sources = project.by_display_path()
        kept: list[Violation] = []
        for violation in raw:
            source = sources.get(violation.path)
            suppression = (
                source.suppressions.get(violation.line) if source is not None else None
            )
            if suppression is not None and suppression.covers(violation.rule_id):
                suppression.used.add(violation.rule_id)
            else:
                kept.append(violation)

        kept.extend(self._meta_diagnostics(sources.values()))
        counts: dict[str, int] = {}
        for source in sources.values():
            for suppression in source.suppressions.values():
                for rule_id in suppression.rule_ids:
                    counts[rule_id] = counts.get(rule_id, 0) + 1

        report = LintReport(
            violations=sorted(kept),
            files_scanned=files_scanned if files_scanned is not None else len(sources),
            parse_errors=list(parse_errors),
        )
        return AnalysisResult(
            report=report,
            project=project,
            graph=graph,
            suppression_counts=dict(sorted(counts.items())),
        )

    def _meta_diagnostics(self, sources: Iterable[SourceFile]) -> list[Violation]:
        """``LINT001`` for active FLOW rules suppressed but never fired."""
        active_ids = {rule_cls.rule_id for rule_cls in self.rules}
        meta: list[Violation] = []
        for source in sources:
            for suppression in source.suppressions.values():
                for rule_id in suppression.rule_ids:
                    if rule_id in active_ids and rule_id not in suppression.used:
                        meta.append(
                            Violation(
                                path=source.display_path,
                                line=suppression.line,
                                col=0,
                                rule_id=META_UNUSED,
                                message=f"unused suppression: {rule_id} did not"
                                " fire on this line; delete it",
                            )
                        )
        return meta

    def analyze_files(self, files: Iterable[tuple[Path, Context]]) -> AnalysisResult:
        """Parse ``src``-context files and analyze them as one project."""
        parsed: list[tuple[Path, SourceFile]] = []
        parse_errors: list[tuple[str, str]] = []
        scanned = 0
        for path, context in files:
            if context != "src":
                continue
            scanned += 1
            try:
                source = SourceFile.parse(path, context)
            except (SyntaxError, UnicodeDecodeError, OSError, ValueError) as exc:
                parse_errors.append((str(path), f"{type(exc).__name__}: {exc}"))
                continue
            parsed.append((path, source))
        project = Project.from_files(parsed)
        return self.analyze_project(
            project, parse_errors=parse_errors, files_scanned=scanned
        )


def run_analysis(
    paths: Iterable[str | Path], rules: Sequence[type[FlowRule]] | None = None
) -> AnalysisResult:
    """Analyze ``paths`` with the default (or given) FLOW pack."""
    from ..lint.walker import discover

    return AnalysisEngine(rules=rules).analyze_files(discover(paths))


def build_graph_payload(result: AnalysisResult) -> dict:
    """The ``results/ANALYSIS_graph.json`` payload (stable ordering)."""
    report = result.report
    return {
        "schema": ANALYSIS_GRAPH_SCHEMA,
        "ok": report.ok,
        "files_scanned": report.files_scanned,
        "modules": sorted(result.project.modules),
        "symbols": len(result.graph.functions),
        "call_graph": {
            "edges": [list(edge) for edge in result.graph.edge_list()],
            "unresolved_call_names": sorted(
                {name for names in result.graph.unresolved.values() for name in names}
            ),
        },
        "dead_code": result.graph.dead_functions(),
        "findings": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "message": v.message,
            }
            for v in report.violations
        ],
        "parse_errors": [
            {"path": path, "error": error} for path, error in report.parse_errors
        ],
        "suppressions": result.suppression_counts,
    }
