"""``repro-analyze``: whole-program dataflow and call-graph analysis.

Stage two of the static-analysis pipeline (stage one is
:mod:`repro.devtools.lint`).  Public surface:

* :func:`run_analysis` — analyze paths programmatically, returning an
  :class:`~repro.devtools.analyze.engine.AnalysisResult` (report +
  project model + call graph + suppression ledger).
* :class:`AnalysisEngine`, :class:`FlowRule`, :func:`register_flow_rule`
  — the framework, for adding project-wide rules.
* :class:`Project` / :func:`build_call_graph` — the program model, for
  tooling and tests.
* :func:`build_graph_payload` — the ``results/ANALYSIS_graph.json``
  payload.

See ``docs/STATIC_ANALYSIS.md`` for the FLOW rule catalogue and the
two-stage architecture.
"""

from __future__ import annotations

from .callgraph import CallGraph, build_call_graph
from .engine import (
    ANALYSIS_GRAPH_SCHEMA,
    AnalysisEngine,
    AnalysisResult,
    build_graph_payload,
    run_analysis,
)
from .framework import FLOW_REGISTRY, FlowRule, default_flow_rules, register_flow_rule
from .project import ModuleInfo, Project, module_name_for_path

# Rule modules self-register on import; this import is the registration.
from . import rules as _rules  # noqa: F401  (imported for side effect)

__all__ = [
    "ANALYSIS_GRAPH_SCHEMA",
    "AnalysisEngine",
    "AnalysisResult",
    "CallGraph",
    "FLOW_REGISTRY",
    "FlowRule",
    "ModuleInfo",
    "Project",
    "build_call_graph",
    "build_graph_payload",
    "default_flow_rules",
    "module_name_for_path",
    "register_flow_rule",
    "run_analysis",
]
