"""The ``FLOW0xx`` rule pack — one module per rule, self-registering.

Importing this package registers every FLOW rule with
:data:`~repro.devtools.analyze.framework.FLOW_REGISTRY` (and announces
the IDs to the lint stage's suppression audit).  See each module's
docstring for the rule's semantics and ``docs/STATIC_ANALYSIS.md`` for
the catalogue.
"""

from __future__ import annotations

from ..framework import FLOW_REGISTRY, default_flow_rules

# Rule modules self-register on import; these imports are the registration.
from . import api_surface as _api_surface  # noqa: F401  (imported for side effect)
from . import ordering as _ordering  # noqa: F401
from . import rng_flow as _rng_flow  # noqa: F401
from . import telemetry_flow as _telemetry_flow  # noqa: F401

__all__ = ["FLOW_REGISTRY", "default_flow_rules"]
