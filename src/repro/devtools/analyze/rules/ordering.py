"""``FLOW003`` — journal-before-store effect ordering.

The durability design (``docs/DURABILITY.md``) recovers a killed run by
replaying the append-only journal; the SQLite comparison store is a
cache *derived from* the journal.  That only holds if, on every path
that persists comparison outcomes, the journal append (or group commit)
happens **before** the store write-through — a store write that lands
without its journal record makes a crash unrecoverable into a
bit-identical resume (the PR 7/8 invariant).

The rule runs over :data:`SCOPE_PREFIXES` (the scheduler engine and the
durability layer — the layers that own the ordering; the memo cache's
deferred write-through in ``repro.scheduler.cache`` is driven *by* the
engine and is checked at its call sites).  Within each function, every
store-write call (``store_batch`` / ``write_entries`` /
``flush_pending``) must be preceded in source order by a journal call
(``<journal>.append`` / ``commit_group`` / a ``*journal*`` helper).
Source order approximates path order: the code under analysis settles
batches in straight-line blocks, and a branch that genuinely reorders
effects should be restructured, not excused.
"""

from __future__ import annotations

import ast

from ..framework import FlowRule, register_flow_rule
from ..project import ModuleInfo

__all__ = ["EffectOrderingRule"]

#: Modules whose functions must journal before they store.
SCOPE_PREFIXES = ("repro.scheduler.engine", "repro.durability")

#: Callee names that commit comparison outcomes to the store.
_STORE_CALLS = frozenset({"store_batch", "write_entries", "flush_pending"})

#: Attribute calls counted as journal appends when the receiver chain
#: names the journal (so ``list.append`` never qualifies).
_JOURNAL_CALLS = frozenset({"append", "commit_group", "begin_group"})


def _in_scope(module_name: str) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in SCOPE_PREFIXES
    )


def _dotted(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


def _is_append_name(name: str) -> bool:
    """``journal``-flavoured *function* names (``JournalMismatchError``,
    a class constructor, is not an append)."""
    return "journal" in name.lower() and not name[:1].isupper()


def _is_journal_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        if _is_append_name(func.attr):
            return True
        if func.attr in _JOURNAL_CALLS:
            return "journal" in _dotted(func.value).lower()
        return False
    if isinstance(func, ast.Name):
        return _is_append_name(func.id)
    return False


def _is_store_call(call: ast.Call) -> bool:
    func = call.func
    return isinstance(func, ast.Attribute) and func.attr in _STORE_CALLS


@register_flow_rule
class EffectOrderingRule(FlowRule):
    """Journal appends must dominate store write-throughs."""

    rule_id = "FLOW003"
    summary = "store write-through before any journal append on this path"
    rationale = (
        "Crash recovery replays the journal and treats the SQLite store "
        "as derived state; a store write that precedes (or never sees) "
        "its journal append makes a mid-crash run unrecoverable into a "
        "bit-identical resume."
    )

    def check(self) -> list:
        for module in self.project:
            if not _in_scope(module.name):
                continue
            for qualname, node in sorted(module.functions.items()):
                self._check_function(module, node)
        return self.violations

    def _check_function(
        self, module: ModuleInfo, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        calls = [c for c in ast.walk(node) if isinstance(c, ast.Call)]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        journaled = False
        for call in calls:
            if _is_journal_call(call):
                journaled = True
            elif _is_store_call(call) and not journaled:
                assert isinstance(call.func, ast.Attribute)
                self.report(
                    module,
                    call,
                    f"{call.func.attr}(...) commits to the store before any"
                    " journal append/commit_group in this function; the"
                    " journal record must land first (see docs/DURABILITY.md)",
                )
