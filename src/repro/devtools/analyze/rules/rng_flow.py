"""``FLOW001`` — RNG provenance on hot paths.

The paper's cost/accuracy guarantees (and the scheduler's bit-identical
resume) require every random stream that reaches the comparison hot
path — oracle, worker models, platform, scheduler engine — to trace
back to a recorded ``SeedSequence.spawn`` / Philox lineage.  Two
failure modes survive per-file linting (``RNG003`` bans bare
``default_rng()`` syntactically, but not *where the stream flows*):

* a bare ``default_rng()`` created in cold code whose enclosing
  function **reaches a hot module through the call graph**;
* **stream aliasing**: one ``Generator`` variable fed into more than
  one job submission (``.submit(...)`` / ``.execute(...)``), or created
  outside a loop that submits per iteration — two jobs drawing from one
  stream makes their results order-dependent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FlowRule, register_flow_rule
from ..project import ModuleInfo

__all__ = ["RngProvenanceRule"]

#: Module prefixes considered the comparison hot path.
HOT_MODULE_PREFIXES = (
    "repro.core.oracle",
    "repro.platform",
    "repro.workers",
    "repro.scheduler.engine",
)

#: Method names that hand work (and a stream) to a job.
_JOB_ENTRY_CALLS = frozenset({"submit", "execute"})

_NESTED_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_BLOCK_FIELDS = frozenset({"body", "orelse", "finalbody", "handlers"})


def _is_hot(fq_name: str) -> bool:
    return any(
        fq_name == prefix or fq_name.startswith(prefix + ".")
        for prefix in HOT_MODULE_PREFIXES
    )


def _is_default_rng_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
    return name == "default_rng"


def _walk_statements(
    body: list[ast.stmt], depth: int = 0
) -> Iterator[tuple[ast.stmt, int]]:
    """Yield ``(statement, loop_depth)`` in source order, skipping nested defs."""
    for stmt in body:
        yield stmt, depth
        if isinstance(stmt, _NESTED_DEFS):
            continue
        loop_depth = depth + 1 if isinstance(stmt, _LOOPS) else depth
        yield from _walk_statements(getattr(stmt, "body", []), loop_depth)
        yield from _walk_statements(getattr(stmt, "orelse", []), depth)
        yield from _walk_statements(getattr(stmt, "finalbody", []), depth)
        for handler in getattr(stmt, "handlers", []):
            yield from _walk_statements(handler.body, depth)


def _stmt_expressions(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Expressions directly owned by ``stmt`` (nested blocks excluded)."""
    for field_name, value in ast.iter_fields(stmt):
        if field_name in _BLOCK_FIELDS:
            continue
        nodes = value if isinstance(value, list) else [value]
        for item in nodes:
            if isinstance(item, ast.AST):
                yield from ast.walk(item)


@register_flow_rule
class RngProvenanceRule(FlowRule):
    """Streams on the hot path must be spawned, threaded, and unshared."""

    rule_id = "FLOW001"
    summary = "random stream on a hot path without SeedSequence lineage"
    rationale = (
        "Oracle/worker/platform draws must come from streams rooted in "
        "SeedSequence.spawn/Philox so runs are replayable and jobs are "
        "independent; a bare default_rng() reaching the hot path, or one "
        "generator shared across job submissions, silently breaks "
        "bit-identical resume."
    )

    def check(self) -> list:
        for module in self.project:
            for qualname, node in sorted(module.functions.items()):
                self._check_function(module, f"{module.name}.{qualname}", node)
        return self.violations

    # ------------------------------------------------------------------
    def _check_function(
        self,
        module: ModuleInfo,
        fq_name: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        #: Generator-valued local name -> (creation line, loop depth).
        creations: dict[str, tuple[int, int]] = {}
        #: rng name -> job-entry call sites as (call node, loop depth).
        feeds: dict[str, list[tuple[ast.Call, int]]] = {}

        for stmt, loop_depth in _walk_statements(node.body):
            if isinstance(stmt, _NESTED_DEFS):
                continue
            for expr in _stmt_expressions(stmt):
                if _is_default_rng_call(expr):
                    assert isinstance(expr, ast.Call)
                    if not expr.args and not expr.keywords:
                        self._check_bare_site(module, fq_name, expr)
                elif isinstance(expr, ast.Call):
                    self._record_feed(expr, creations, feeds, loop_depth)
            if isinstance(stmt, ast.Assign) and _is_default_rng_call(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        creations[target.id] = (stmt.lineno, loop_depth)

        for name, sites in sorted(feeds.items()):
            created_line, created_depth = creations[name]
            for index, (call, loop_depth) in enumerate(sites):
                if index > 0:
                    self.report(
                        module,
                        call,
                        f"generator {name!r} (created line {created_line}) feeds"
                        " more than one job submission; spawn one child stream"
                        " per job via SeedSequence.spawn",
                    )
                elif loop_depth > created_depth:
                    self.report(
                        module,
                        call,
                        f"generator {name!r} (created line {created_line}, outside"
                        " the loop) is re-used across per-iteration job"
                        " submissions; spawn a child stream per iteration",
                    )

    def _check_bare_site(
        self, module: ModuleInfo, fq_name: str, call: ast.Call
    ) -> None:
        if _is_hot(module.name):
            why = f"defined in hot module {module.name}"
        elif self.graph.reaches(fq_name, _is_hot):
            why = "reaches the hot path through the call graph"
        else:
            return
        self.report(
            module,
            call,
            f"bare default_rng() {why}: OS entropy is not replayable;"
            " derive the stream from SeedSequence.spawn and thread it in",
        )

    @staticmethod
    def _record_feed(
        call: ast.Call,
        creations: dict[str, tuple[int, int]],
        feeds: dict[str, list[tuple[ast.Call, int]]],
        loop_depth: int,
    ) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in _JOB_ENTRY_CALLS):
            return
        values = list(call.args) + [kw.value for kw in call.keywords]
        for value in values:
            if isinstance(value, ast.Name) and value.id in creations:
                feeds.setdefault(value.id, []).append((call, loop_depth))
