"""``FLOW002`` — bidirectional telemetry name closure.

``TEL002`` checks each emit call against :mod:`repro.telemetry.names`
one file at a time; it can never see the *other* direction — a name
declared in the registry that **nothing emits**.  Dead names rot the
trace contract exactly like undeclared ones: consumers match on a
schema the library no longer produces.

This rule diffs the two sets project-wide:

* every **literal** emit (``event``/``span``/``count``/``counter``/
  ``timer``) must name a declared entry — reported at the emit site;
* every declared entry must have at least one literal reference in the
  project — reported at its declaration line in the names module.

Timer names are derived (``<span>.duration``), never declared, so they
are exempt from the dead-name direction.  Dynamic emits (variables,
f-strings) are invisible statically; a declared name that appears as a
plain string literal *anywhere* in the project (dispatch tables, the
replay path) therefore also counts as live.
"""

from __future__ import annotations

import ast

from ...lint.rules.telemetry import DeclaredNamesRule as _Tel002
from ..framework import FlowRule, register_flow_rule
from ..project import ModuleInfo

__all__ = ["TelemetryClosureRule"]

#: The registries the rule diffs, with the emit methods feeding each.
_REGISTRY_METHODS = {
    "EVENT_KINDS": ("event",),
    "SPAN_NAMES": ("span",),
    "COUNTER_NAMES": ("count", "counter", "timer"),
}

_METHOD_TO_REGISTRY = {
    method: registry
    for registry, methods in sorted(_REGISTRY_METHODS.items())
    for method in methods
}

#: Same guard as TEL002: generic method names are only checked on
#: telemetry-looking receivers (``str.count`` is not a metric).
_RECEIVER_GUARDED = frozenset({"count", "counter", "timer"})


@register_flow_rule
class TelemetryClosureRule(FlowRule):
    """Declared telemetry names and literal emit sites must close."""

    rule_id = "FLOW002"
    summary = "telemetry registry and emit sites disagree"
    rationale = (
        "repro.telemetry.names is the trace contract: an undeclared "
        "emission forks the schema, a declared-but-never-emitted name is "
        "a promise consumers wait on forever. Only a whole-program diff "
        "can check the second direction."
    )

    #: Where the declared registries live.
    NAMES_MODULE = "repro.telemetry.names"

    def check(self) -> list:
        names_module = self.project.modules.get(self.NAMES_MODULE)
        if names_module is None:
            return self.violations
        declared = self._declared_names(names_module)
        span_names = {name for name, _ in declared.get("SPAN_NAMES", [])}
        registries = {
            registry: {name for name, _ in entries}
            for registry, entries in declared.items()
        }
        # Timers accept declared counters plus the derived <span>.duration set.
        timer_ok = registries.get("COUNTER_NAMES", set()) | {
            f"{name}.duration" for name in span_names
        }

        emitted: dict[str, set[str]] = {registry: set() for registry in _REGISTRY_METHODS}
        literals_elsewhere: set[str] = set()
        for module in self.project:
            if module.name == self.NAMES_MODULE:
                continue
            self._scan_module(module, registries, timer_ok, emitted, literals_elsewhere)

        for registry in sorted(_REGISTRY_METHODS):
            live = emitted[registry] | literals_elsewhere
            for name, line in declared.get(registry, []):
                if name not in live:
                    self.report(
                        names_module,
                        line,
                        f"{registry} declares {name!r} but no emit site (or"
                        " literal reference) exists in the project; delete the"
                        " declaration or instrument the emitter",
                    )
        return self.violations

    # ------------------------------------------------------------------
    @staticmethod
    def _declared_names(module: ModuleInfo) -> dict[str, list[tuple[str, int]]]:
        """Registry name -> declared ``(name, line)`` entries."""
        declared: dict[str, list[tuple[str, int]]] = {}
        for stmt in module.source.tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in _REGISTRY_METHODS:
                    entries = declared.setdefault(target.id, [])
                    value = stmt.value
                    assert value is not None
                    for node in ast.walk(value):
                        if isinstance(node, ast.Constant) and isinstance(node.value, str):
                            entries.append((node.value, node.lineno))
        return declared

    def _scan_module(
        self,
        module: ModuleInfo,
        registries: dict[str, set[str]],
        timer_ok: set[str],
        emitted: dict[str, set[str]],
        literals_elsewhere: set[str],
    ) -> None:
        checked_literals: set[int] = set()
        for node in ast.walk(module.source.tree):
            if isinstance(node, ast.Call):
                self._scan_call(
                    module, node, registries, timer_ok, emitted, checked_literals
                )
        for node in ast.walk(module.source.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in checked_literals
            ):
                literals_elsewhere.add(node.value)

    def _scan_call(
        self,
        module: ModuleInfo,
        node: ast.Call,
        registries: dict[str, set[str]],
        timer_ok: set[str],
        emitted: dict[str, set[str]],
        checked_literals: set[int],
    ) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _METHOD_TO_REGISTRY
            and node.args
        ):
            return
        if func.attr in _RECEIVER_GUARDED and not _Tel002._is_telemetry_receiver(
            func.value
        ):
            return
        registry = _METHOD_TO_REGISTRY[func.attr]
        allowed = timer_ok if func.attr == "timer" else registries.get(registry, set())
        for literal_node in ast.walk(node.args[0]):
            if isinstance(literal_node, ast.Constant):
                checked_literals.add(id(literal_node))
        for literal in _Tel002._literal_candidates(node.args[0]):
            emitted[registry].add(literal)
            if literal not in allowed:
                self.report(
                    module,
                    node,
                    f"{func.attr}({literal!r}): name not declared in"
                    f" repro.telemetry.names.{registry}",
                )
