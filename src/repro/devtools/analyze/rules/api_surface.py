"""``FLOW004`` — integrity of the stable facade (``repro.api``).

``repro.api`` is the one import surface with a compatibility guarantee.
``API001`` polices *importers*; this rule polices the facade itself,
which only a whole-program view can do:

* every name in ``__all__`` must actually be bound in the facade;
* every public binding in the facade must be listed in ``__all__`` —
  an un-exported import is surface the docs promise but the contract
  (``from repro.api import *``, API tests) does not carry;
* no deprecated shim may be bound or exported — shims exist for
  *downstream* deprecation cycles and must not leak back in;
* every re-export must resolve, through the project's import chains, to
  a real definition in the source module (a facade line that imports a
  deleted symbol is a time bomb that only detonates at import time).

The call-graph **dead-code report** (unreferenced functions/methods)
rides along in ``results/ANALYSIS_graph.json`` as information, not as
violations — see :meth:`CallGraph.dead_functions`.
"""

from __future__ import annotations

from ...lint.rules.api import DEPRECATED_NAMES
from ..framework import FlowRule, register_flow_rule
from ..project import ModuleInfo

__all__ = ["ApiSurfaceRule"]

#: Imports from these modules are plumbing, not public surface.
_EXEMPT_MODULES = frozenset({"__future__", "typing"})


@register_flow_rule
class ApiSurfaceRule(FlowRule):
    """``repro.api.__all__`` and the facade's bindings must agree."""

    rule_id = "FLOW004"
    summary = "stable facade out of sync with its declared surface"
    rationale = (
        "repro.api is the compatibility contract: __all__, the actual "
        "bindings, and the definitions they re-export must stay mutually "
        "consistent, and deprecated shims must never leak back into the "
        "stable surface."
    )

    #: The facade module this rule audits.
    FACADE_MODULE = "repro.api"

    def check(self) -> list:
        facade = self.project.modules.get(self.FACADE_MODULE)
        if facade is None:
            return self.violations
        if facade.exports is None:
            self.report(
                facade, 1, "the stable facade must declare __all__ explicitly"
            )
            return self.violations
        self._check_exports_bound(facade)
        self._check_bindings_exported(facade)
        self._check_deprecated(facade)
        self._check_reexports_resolve(facade)
        return self.violations

    # ------------------------------------------------------------------
    def _check_exports_bound(self, facade: ModuleInfo) -> None:
        for name, line in facade.exports or []:
            if not facade.binds(name):
                self.report(
                    facade,
                    line,
                    f"__all__ exports {name!r} but the facade never binds it;"
                    " remove the entry or add the import",
                )

    def _check_bindings_exported(self, facade: ModuleInfo) -> None:
        exported = set(facade.export_names())
        public = []
        for alias, binding in sorted(facade.imports.items()):
            if binding.module in _EXEMPT_MODULES:
                continue
            public.append((alias, binding.line))
        for name, node in sorted(facade.functions.items()):
            if "." not in name:
                public.append((name, node.lineno))
        for name, node in sorted(facade.classes.items()):
            public.append((name, node.lineno))
        for name, line in sorted(facade.top_bindings.items()):
            public.append((name, line))
        for name, line in public:
            if name.startswith("_") or name in exported:
                continue
            self.report(
                facade,
                line,
                f"public symbol {name!r} is bound in the facade but missing"
                " from __all__; export it or prefix it with an underscore",
            )

    def _check_deprecated(self, facade: ModuleInfo) -> None:
        exported = set(facade.export_names())
        for name, hint in sorted(DEPRECATED_NAMES.items()):
            if name in facade.imports or name in exported:
                binding = facade.imports.get(name)
                line = binding.line if binding is not None else 1
                for export_name, export_line in facade.exports or []:
                    if export_name == name:
                        line = export_line
                        break
                self.report(
                    facade,
                    line,
                    f"deprecated shim {name!r} leaks into the stable facade;"
                    f" {hint}",
                )

    def _check_reexports_resolve(self, facade: ModuleInfo) -> None:
        for alias, binding in sorted(facade.imports.items()):
            if binding.module is None or binding.symbol is None:
                continue
            if binding.module not in self.project.modules:
                continue
            if self.project.resolve(binding.module, binding.symbol) is None:
                self.report(
                    facade,
                    binding.line,
                    f"re-export of {binding.symbol!r} from {binding.module}:"
                    " the source module does not define or import that name",
                )
