"""``FLOW004`` — integrity of the stable facade (``repro.api``).

``repro.api`` is the one import surface with a compatibility guarantee.
``API001`` polices *importers*; this rule polices the facade itself,
which only a whole-program view can do:

* every name in ``__all__`` must actually be bound in the facade;
* every public binding in the facade must be listed in ``__all__`` —
  an un-exported import is surface the docs promise but the contract
  (``from repro.api import *``, API tests) does not carry;
* no deprecated shim may be bound or exported — shims exist for
  *downstream* deprecation cycles and must not leak back in;
* every re-export must resolve, through the project's import chains, to
  a real definition in the source module (a facade line that imports a
  deleted symbol is a time bomb that only detonates at import time);
* the **wire error registry** (``repro.service_http.errors``) must be a
  bijection: every wire code names exactly one exception type, every
  type appears under exactly one code, every typed error the registry
  module defines is mapped, every mapped type resolves to a real
  definition *and* is exported from the facade, and ``WIRE_STATUS``
  covers exactly the registered codes — so a client can always turn a
  wire code back into the one exception ``repro.api`` exports for it.

The call-graph **dead-code report** (unreferenced functions/methods)
rides along in ``results/ANALYSIS_graph.json`` as information, not as
violations — see :meth:`CallGraph.dead_functions`.
"""

from __future__ import annotations

import ast

from ...lint.rules.api import DEPRECATED_NAMES
from ..framework import FlowRule, register_flow_rule
from ..project import ModuleInfo

__all__ = ["ApiSurfaceRule"]

#: Imports from these modules are plumbing, not public surface.
_EXEMPT_MODULES = frozenset({"__future__", "typing"})


@register_flow_rule
class ApiSurfaceRule(FlowRule):
    """``repro.api.__all__`` and the facade's bindings must agree."""

    rule_id = "FLOW004"
    summary = "stable facade out of sync with its declared surface"
    rationale = (
        "repro.api is the compatibility contract: __all__, the actual "
        "bindings, and the definitions they re-export must stay mutually "
        "consistent, and deprecated shims must never leak back into the "
        "stable surface."
    )

    #: The facade module this rule audits.
    FACADE_MODULE = "repro.api"

    #: The wire error registry module (codes ↔ exception types).
    REGISTRY_MODULE = "repro.service_http.errors"

    def check(self) -> list:
        facade = self.project.modules.get(self.FACADE_MODULE)
        if facade is None:
            return self.violations
        if facade.exports is None:
            self.report(
                facade, 1, "the stable facade must declare __all__ explicitly"
            )
            return self.violations
        self._check_exports_bound(facade)
        self._check_bindings_exported(facade)
        self._check_deprecated(facade)
        self._check_reexports_resolve(facade)
        self._check_wire_registry(facade)
        return self.violations

    # ------------------------------------------------------------------
    def _check_exports_bound(self, facade: ModuleInfo) -> None:
        for name, line in facade.exports or []:
            if not facade.binds(name):
                self.report(
                    facade,
                    line,
                    f"__all__ exports {name!r} but the facade never binds it;"
                    " remove the entry or add the import",
                )

    def _check_bindings_exported(self, facade: ModuleInfo) -> None:
        exported = set(facade.export_names())
        public = []
        for alias, binding in sorted(facade.imports.items()):
            if binding.module in _EXEMPT_MODULES:
                continue
            public.append((alias, binding.line))
        for name, node in sorted(facade.functions.items()):
            if "." not in name:
                public.append((name, node.lineno))
        for name, node in sorted(facade.classes.items()):
            public.append((name, node.lineno))
        for name, line in sorted(facade.top_bindings.items()):
            public.append((name, line))
        for name, line in public:
            if name.startswith("_") or name in exported:
                continue
            self.report(
                facade,
                line,
                f"public symbol {name!r} is bound in the facade but missing"
                " from __all__; export it or prefix it with an underscore",
            )

    def _check_deprecated(self, facade: ModuleInfo) -> None:
        exported = set(facade.export_names())
        for name, hint in sorted(DEPRECATED_NAMES.items()):
            if name in facade.imports or name in exported:
                binding = facade.imports.get(name)
                line = binding.line if binding is not None else 1
                for export_name, export_line in facade.exports or []:
                    if export_name == name:
                        line = export_line
                        break
                self.report(
                    facade,
                    line,
                    f"deprecated shim {name!r} leaks into the stable facade;"
                    f" {hint}",
                )

    def _check_reexports_resolve(self, facade: ModuleInfo) -> None:
        for alias, binding in sorted(facade.imports.items()):
            if binding.module is None or binding.symbol is None:
                continue
            if binding.module not in self.project.modules:
                continue
            if self.project.resolve(binding.module, binding.symbol) is None:
                self.report(
                    facade,
                    binding.line,
                    f"re-export of {binding.symbol!r} from {binding.module}:"
                    " the source module does not define or import that name",
                )

    # ------------------------------------------------------------------
    # The wire error registry (repro.service_http.errors)
    # ------------------------------------------------------------------
    @staticmethod
    def _dict_literal(
        module: ModuleInfo, name: str
    ) -> tuple[ast.Dict | None, int]:
        """The dict-literal assigned to top-level ``name`` (and its line)."""
        for node in module.source.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    if isinstance(value, ast.Dict):
                        return value, node.lineno
                    return None, node.lineno
        return None, 1

    def _check_wire_registry(self, facade: ModuleInfo) -> None:
        registry = self.project.modules.get(self.REGISTRY_MODULE)
        if registry is None:
            return  # the serving layer is absent in synthetic fixtures
        errors_dict, errors_line = self._dict_literal(registry, "WIRE_ERRORS")
        if errors_dict is None:
            self.report(
                registry,
                errors_line,
                "WIRE_ERRORS must be a top-level dict literal mapping wire"
                " codes to exception types (the registry is audited"
                " statically)",
            )
            return
        exported = set(facade.export_names())
        codes: dict[str, int] = {}
        types: dict[str, int] = {}
        for key, value in zip(errors_dict.keys, errors_dict.values):
            line = key.lineno if key is not None else errors_line
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                self.report(
                    registry, line, "WIRE_ERRORS keys must be string literals"
                )
                continue
            code = key.value
            if code in codes:
                self.report(
                    registry,
                    line,
                    f"wire code {code!r} registered twice (first at line"
                    f" {codes[code]}); codes must be unique",
                )
                continue
            codes[code] = line
            if not isinstance(value, ast.Name):
                self.report(
                    registry,
                    line,
                    f"wire code {code!r} must map to a plain exception-class"
                    " name",
                )
                continue
            type_name = value.id
            if type_name in types:
                self.report(
                    registry,
                    line,
                    f"exception type {type_name!r} is registered under two"
                    " wire codes (one type, one code)",
                )
                continue
            types[type_name] = line
            if self.project.resolve(self.REGISTRY_MODULE, type_name) is None:
                self.report(
                    registry,
                    line,
                    f"wire code {code!r} maps to {type_name!r}, which the"
                    " registry module neither defines nor imports",
                )
            if type_name not in exported:
                self.report(
                    registry,
                    line,
                    f"wire code {code!r} maps to {type_name!r}, but the stable"
                    f" facade does not export it — a client cannot catch the"
                    " typed error the code names",
                )
        for class_name, node in sorted(registry.classes.items()):
            if class_name.endswith("Error") and class_name not in types:
                self.report(
                    registry,
                    node.lineno,
                    f"typed error {class_name!r} is defined in the registry"
                    " module but missing from WIRE_ERRORS; every wire-layer"
                    " error needs a stable code",
                )
        status_dict, status_line = self._dict_literal(registry, "WIRE_STATUS")
        if status_dict is None:
            self.report(
                registry,
                status_line,
                "WIRE_STATUS must be a top-level dict literal (code ->"
                " HTTP status)",
            )
            return
        status_codes: set[str] = set()
        for key in status_dict.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                status_codes.add(key.value)
        for code, line in sorted(codes.items()):
            if code not in status_codes:
                self.report(
                    registry,
                    line,
                    f"wire code {code!r} has no HTTP status in WIRE_STATUS",
                )
        for key in status_dict.keys:
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and key.value not in codes
            ):
                self.report(
                    registry,
                    key.lineno,
                    f"WIRE_STATUS lists {key.value!r}, which is not a"
                    " registered wire code",
                )
