"""Call-graph construction for ``repro-analyze``.

A conservative, name-resolution call graph over a :class:`Project`:

* **Nodes** are fully-qualified functions and methods
  (``repro.core.maxfinder.find_max``, ``repro.scheduler.engine.JobTicket.run``).
* **Edges** are resolved where static resolution is honest: direct
  calls to local or imported functions (re-export chains are chased
  through the project's symbol table), ``self.method(...)`` calls
  (including single-inheritance base-chain lookup), and
  ``module.func(...)`` calls through module imports.
* Everything else — attribute calls on arbitrary objects — lands in
  ``unresolved`` as a bare method name.  Rules treat unresolved calls
  conservatively: reachability does not follow them, and dead-code
  reporting treats any referenced name as live.

The dead-code *report* (part of ``results/ANALYSIS_graph.json``) is
informational, not a FLOW violation: Python's dynamism makes "never
referenced" a review queue, not a proof.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable

from .project import ModuleInfo, Project

__all__ = ["CallGraph", "build_call_graph"]

#: How many base classes a ``self.method`` lookup will climb.
_BASE_CHAIN_DEPTH = 8


@dataclass
class CallGraph:
    """Resolved edges plus everything needed for conservative queries."""

    #: Caller fq-name -> resolved callee fq-names.
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: Caller fq-name -> bare names of calls that could not be resolved.
    unresolved: dict[str, set[str]] = field(default_factory=dict)
    #: Every known function/method: fq-name -> (display_path, line).
    functions: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: Fq-name -> module that defines it.
    module_of: dict[str, str] = field(default_factory=dict)
    #: Every identifier referenced anywhere (names, attributes, exports,
    #: import symbols, string literals) — the "live" set for dead-code.
    referenced_names: set[str] = field(default_factory=set)

    def add_edge(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    def add_unresolved(self, caller: str, name: str) -> None:
        self.unresolved.setdefault(caller, set()).add(name)

    def reaches(self, start: str, predicate: Callable[[str], bool]) -> bool:
        """Whether any node satisfying ``predicate`` is reachable from ``start``."""
        seen: set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if predicate(node):
                return True
            stack.extend(sorted(self.edges.get(node, ())))
        return False

    def edge_list(self) -> list[tuple[str, str]]:
        """All edges as a sorted, stable list (for the JSON artifact)."""
        return sorted(
            (caller, callee)
            for caller, callees in self.edges.items()
            for callee in callees
        )

    def dead_functions(self) -> list[str]:
        """Defined functions/methods whose name is never referenced.

        Conservative: a name appearing *anywhere* in the project — as a
        call, attribute access, export, import, or string literal (the
        ``getattr`` escape hatch) — counts as live.  Dunder methods and
        CLI entry points are exempt.
        """
        dead = []
        for fq in sorted(self.functions):
            name = fq.rsplit(".", 1)[1]
            if name.startswith("__") and name.endswith("__"):
                continue
            if name == "main":
                continue
            if name.startswith("visit_"):  # ast.NodeVisitor dynamic dispatch
                continue
            if name not in self.referenced_names:
                dead.append(fq)
        return dead


def _enclosing_class(qualname: str) -> str | None:
    return qualname.split(".", 1)[0] if "." in qualname else None


def _resolve_base_chain(
    project: Project, module: ModuleInfo, class_name: str, depth: int = 0
) -> list[tuple[ModuleInfo, str]]:
    """The class plus its resolvable base classes, nearest first."""
    chain = [(module, class_name)]
    if depth >= _BASE_CHAIN_DEPTH:
        return chain
    for base in module.class_bases.get(class_name, []):
        head = base.split(".")[0]
        resolved = project.resolve(module.name, head)
        if resolved is None:
            continue
        base_module_name, _, base_class = resolved.rpartition(".")
        if "." in base:  # e.g. ``framework.Rule`` — the attr is the class
            base_class = base.rsplit(".", 1)[1]
            base_module_name = resolved
        base_module = project.modules.get(base_module_name)
        if base_module is not None and base_class in base_module.classes:
            chain.extend(
                _resolve_base_chain(project, base_module, base_class, depth + 1)
            )
    return chain


def _resolve_self_call(
    project: Project, module: ModuleInfo, class_name: str, method: str
) -> str | None:
    """Where ``self.method(...)`` lands, following the base chain."""
    for owner_module, owner_class in _resolve_base_chain(project, module, class_name):
        if f"{owner_class}.{method}" in owner_module.functions:
            return f"{owner_module.name}.{owner_class}.{method}"
    return None


def _resolve_call(
    project: Project, module: ModuleInfo, caller_class: str | None, call: ast.Call
) -> tuple[str | None, str | None]:
    """``(resolved_fq, unresolved_name)`` for one call expression."""
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in module.functions:
            return f"{module.name}.{name}", None
        resolved = project.resolve(module.name, name)
        if resolved is not None:
            return resolved, None
        return None, name
    if isinstance(func, ast.Attribute):
        attr = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and caller_class is not None:
                landed = _resolve_self_call(project, module, caller_class, attr)
                if landed is not None:
                    return landed, None
                return None, attr
            binding = module.imports.get(receiver.id)
            if binding is not None and binding.target in project.modules:
                resolved = project.resolve(binding.target, attr)
                if resolved is not None:
                    return resolved, None
            if binding is not None:
                # External module (numpy, json, ...): keep the dotted form
                # so prefix predicates still see it, but it is a leaf.
                return f"{binding.target}.{attr}", None
        return None, attr
    return None, None


def _collect_references(graph: CallGraph, project: Project) -> None:
    for module in project:
        for node in ast.walk(module.source.tree):
            if isinstance(node, ast.Name):
                graph.referenced_names.add(node.id)
            elif isinstance(node, ast.Attribute):
                graph.referenced_names.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                graph.referenced_names.add(node.value)
        for name, _ in module.exports or []:
            graph.referenced_names.add(name)
        for binding in module.imports.values():
            graph.referenced_names.add(binding.alias)
            if binding.symbol is not None:
                graph.referenced_names.add(binding.symbol)


def build_call_graph(project: Project) -> CallGraph:
    """Resolve every call site in ``project`` into a :class:`CallGraph`."""
    graph = CallGraph()
    for module in project:
        for qualname, node in sorted(module.functions.items()):
            fq = f"{module.name}.{qualname}"
            graph.functions[fq] = (module.source.display_path, node.lineno)
            graph.module_of[fq] = module.name
            caller_class = _enclosing_class(qualname)
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                resolved, unresolved = _resolve_call(project, module, caller_class, call)
                if resolved is not None:
                    graph.add_edge(fq, resolved)
                elif unresolved is not None:
                    graph.add_unresolved(fq, unresolved)
    _collect_references(graph, project)
    return graph
