"""The ``repro-analyze`` console entry point.

Usage::

    repro-analyze [paths ...] [--format text|json] [--select IDS]
                  [--ignore IDS] [--list-rules] [--artifact PATH]
                  [--history] [--budget [PATH]]

Exit codes: ``0`` clean, ``1`` violations (or unparsable files), ``2``
usage errors.  With no paths, analyzes ``src`` relative to the current
directory — the repository invocation CI uses.  ``--artifact`` writes
the call graph + findings atomically (``results/ANALYSIS_graph.json``
in CI); ``--history`` appends a ``repro.bench_history/v1`` line with
the findings/suppression counts; ``--budget`` switches to the
suppression-debt ratchet described in ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from ..budget import DEFAULT_BUDGET_PATH, run_budget
from ..lint.reporters import render_json, render_rule_listing, render_text
from ..lint.walker import discover
from .engine import AnalysisEngine, AnalysisResult, build_graph_payload

# Rule modules self-register on import; this import is the registration.
from .framework import FLOW_REGISTRY
from . import rules as _rules  # noqa: F401  (imported for side effect)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for ``--help`` golden tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Whole-program dataflow/call-graph checks for the project's"
            " cross-module invariants (stage two of repro-lint)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to run exclusively (e.g. FLOW001,FLOW003)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule pack (ID, contexts, suppressibility, summary) and exit",
    )
    parser.add_argument(
        "--artifact",
        metavar="PATH",
        type=Path,
        help="write the call graph + findings to PATH atomically"
        " (CI uses results/ANALYSIS_graph.json)",
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="append findings/suppression counts to results/BENCH_history.jsonl",
    )
    parser.add_argument(
        "--budget",
        nargs="?",
        const=DEFAULT_BUDGET_PATH,
        metavar="PATH",
        help="suppression-debt ratchet mode: compare per-rule disable counts"
        f" against the checked-in baseline (default: {DEFAULT_BUDGET_PATH})",
    )
    return parser


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _write_artifact(path: Path, result: AnalysisResult) -> None:
    """Persist the analysis artifact via the atomic writer."""
    from ...experiments.artifacts import write_json_atomic

    write_json_atomic(path, build_graph_payload(result))
    print(f"(wrote {path})")


def _append_analysis_history(result: AnalysisResult) -> None:
    """One ``repro.bench_history/v1`` provenance line for trend greps."""
    from ...cli import _append_history

    _append_history(
        None,
        "analyze",
        {
            "findings": len(result.report.violations),
            "parse_errors": len(result.report.parse_errors),
            "files_scanned": result.report.files_scanned,
            "modules": len(result.project.modules),
            "call_edges": len(result.graph.edge_list()),
            "dead_code": len(result.graph.dead_functions()),
            "suppressions": sum(result.suppression_counts.values()),
        },
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Run the analyzer; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        selected = FLOW_REGISTRY.select(
            select=_split_ids(args.select), ignore=_split_ids(args.ignore)
        )
    except KeyError as exc:
        parser.error(f"unknown rule id: {exc.args[0]}")

    if args.list_rules:
        sys.stdout.write(render_rule_listing(selected, include_meta=True))
        return 0

    try:
        files = discover(args.paths)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    if args.budget is not None:
        code, output = run_budget(files, args.budget)
        sys.stdout.write(output)
        return code

    result = AnalysisEngine(rules=selected).analyze_files(files)
    renderer = render_json if args.format == "json" else render_text
    sys.stdout.write(renderer(result.report))
    if args.artifact is not None:
        _write_artifact(args.artifact, result)
    if args.history:
        _append_analysis_history(result)
    return 0 if result.report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
