"""Core of the ``repro-analyze`` whole-program analysis stage.

This is the second stage of the project's static-analysis pipeline
(``docs/STATIC_ANALYSIS.md``).  Stage one, ``repro-lint``, checks one
file at a time; this stage parses every ``src``-context module into a
:class:`~repro.devtools.analyze.project.Project`, builds a
:class:`~repro.devtools.analyze.callgraph.CallGraph`, and runs the
``FLOW0xx`` rule pack — interprocedural checks a per-file AST visitor
cannot express.

A :class:`FlowRule` reuses the lint stage's building blocks: findings
are :class:`~repro.devtools.lint.framework.Violation` objects, silenced
by the same same-line ``# repro-lint: disable=FLOW00x -- why`` comments
(one suppression grammar, one audit trail).  Rules registered here are
announced to the lint stage through ``EXTERNAL_KNOWN_IDS`` so a FLOW
suppression in library code does not trip ``LINT003`` (unknown rule)
under plain ``repro-lint``.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from ..lint.framework import EXTERNAL_KNOWN_IDS, RuleRegistry, Violation
from .callgraph import CallGraph
from .project import ModuleInfo, Project

__all__ = [
    "FLOW_REGISTRY",
    "FlowRule",
    "default_flow_rules",
    "register_flow_rule",
]


class FlowRule:
    """Base class for one whole-program check.

    Subclasses set the class attributes, implement :meth:`check`, and
    call :meth:`report` per finding.  One instance is created per
    analysis run (not per file), so instance state is per-run scratch
    space and a rule may report violations in any module.
    """

    #: Stable ID, e.g. ``"FLOW001"`` — what suppressions name.
    rule_id: ClassVar[str]
    #: One-line description used as the default violation message.
    summary: ClassVar[str]
    #: Which project guarantee the rule protects (rendered in docs/CLI).
    rationale: ClassVar[str]
    #: FLOW rules analyze library code only.
    contexts: ClassVar[frozenset[str]] = frozenset({"src"})
    #: Whether ``# repro-lint: disable=`` may silence this rule.
    suppressible: ClassVar[bool] = True

    def __init__(self, project: Project, graph: CallGraph):
        self.project = project
        self.graph = graph
        self.violations: list[Violation] = []

    def check(self) -> list[Violation]:
        """Run the rule over the project and return its findings."""
        raise NotImplementedError

    def report(
        self, module: ModuleInfo, node: ast.AST | int, message: str | None = None
    ) -> None:
        """Record a violation at ``node`` (an AST node or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        self.violations.append(
            Violation(
                path=module.source.display_path,
                line=line,
                col=col,
                rule_id=self.rule_id,
                message=message if message is not None else self.summary,
            )
        )


#: The default FLOW pack that :func:`register_flow_rule` populates.
FLOW_REGISTRY = RuleRegistry()


def register_flow_rule(rule_cls: type[FlowRule]) -> type[FlowRule]:
    """Class decorator adding a rule to the FLOW pack."""
    FLOW_REGISTRY.register(rule_cls)  # type: ignore[arg-type]  (duck-typed on rule_id)
    EXTERNAL_KNOWN_IDS.add(rule_cls.rule_id)
    return rule_cls


def default_flow_rules() -> list[type[FlowRule]]:
    """The registered FLOW pack (importing :mod:`.rules` populates it)."""
    return list(FLOW_REGISTRY)  # type: ignore[return-value]
