"""Suppression-debt budget: the ``--budget`` mode of both CLIs.

Every ``# repro-lint: disable=RULE -- why`` in library code is debt —
a place an invariant bends.  The budget makes that debt a *ratchet*:
``lint-budget.json`` at the repository root records the allowed per-rule
count, ``repro-lint --budget`` / ``repro-analyze --budget`` recount the
tree and fail when any rule's count **grows** past its baseline (new
rule IDs start at zero).  Shrinking is always green, and reported as a
hint to tighten the checked-in baseline so the ratchet clicks down.

Counting tokenizes rather than parses (a suppression in a temporarily
unparsable file still counts), and covers ``src``-context files only —
test fixtures may suppress freely.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .lint.framework import Context, _parse_suppressions

__all__ = [
    "BUDGET_SCHEMA",
    "DEFAULT_BUDGET_PATH",
    "BudgetReport",
    "check_budget",
    "count_suppressions",
    "load_budget",
    "render_budget",
    "run_budget",
]

BUDGET_SCHEMA = "repro.lint_budget/v1"
DEFAULT_BUDGET_PATH = "lint-budget.json"


def count_suppressions(
    files: Iterable[tuple[Path, Context]], contexts: tuple[str, ...] = ("src",)
) -> dict[str, int]:
    """Per-rule suppression counts over ``files`` in ``contexts``."""
    counts: dict[str, int] = {}
    for path, context in files:
        if context not in contexts:
            continue
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        for suppression in _parse_suppressions(text).values():
            for rule_id in suppression.rule_ids:
                counts[rule_id] = counts.get(rule_id, 0) + 1
    return dict(sorted(counts.items()))


def load_budget(path: str | Path) -> dict[str, int]:
    """The per-rule baseline from ``lint-budget.json`` (strict schema)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != BUDGET_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BUDGET_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    budget = payload.get("budget", {})
    if not isinstance(budget, dict):
        raise ValueError(f"{path}: 'budget' must be an object of rule-id counts")
    return {str(rule): int(count) for rule, count in sorted(budget.items())}


@dataclass(frozen=True)
class BudgetEntry:
    rule_id: str
    count: int
    allowed: int

    @property
    def over(self) -> bool:
        return self.count > self.allowed


@dataclass
class BudgetReport:
    entries: list[BudgetEntry]

    @property
    def ok(self) -> bool:
        return not any(entry.over for entry in self.entries)


def check_budget(counts: dict[str, int], budget: dict[str, int]) -> BudgetReport:
    """Compare actual counts against the baseline (ratchet semantics)."""
    entries = [
        BudgetEntry(rule_id=rule, count=counts.get(rule, 0), allowed=allowed)
        for rule, allowed in sorted(budget.items())
    ]
    entries.extend(
        BudgetEntry(rule_id=rule, count=count, allowed=0)
        for rule, count in sorted(counts.items())
        if rule not in budget
    )
    return BudgetReport(entries=sorted(entries, key=lambda e: e.rule_id))


def render_budget(report: BudgetReport) -> str:
    """Human-readable budget table plus the verdict line."""
    lines = ["rule     used  budget"]
    slack = 0
    for entry in report.entries:
        marker = "  OVER" if entry.over else ""
        lines.append(f"{entry.rule_id:<8} {entry.count:>4}  {entry.allowed:>6}{marker}")
        if entry.count < entry.allowed:
            slack += entry.allowed - entry.count
    overages = [entry for entry in report.entries if entry.over]
    if overages:
        lines.append(
            f"budget exceeded for {len(overages)} rule"
            f"{'s' if len(overages) != 1 else ''}: suppression debt may only"
            " shrink; fix the violation instead of suppressing it"
        )
    else:
        lines.append("budget ok")
        if slack:
            lines.append(
                f"({slack} unused allowance{'s' if slack != 1 else ''} —"
                " tighten lint-budget.json to ratchet the debt down)"
            )
    return "\n".join(lines) + "\n"


def run_budget(
    files: Iterable[tuple[Path, Context]], budget_path: str | Path
) -> tuple[int, str]:
    """The CLI budget mode: ``(exit_code, rendered_output)``."""
    path = Path(budget_path)
    if not path.is_file():
        return 2, f"budget baseline not found: {path}\n"
    try:
        budget = load_budget(path)
    except (ValueError, json.JSONDecodeError) as exc:
        return 2, f"unreadable budget baseline: {exc}\n"
    report = check_budget(count_suppressions(files), budget)
    return (0 if report.ok else 1), render_budget(report)
