"""File discovery for ``repro-lint``: which files, in which context.

The context decides which rules apply: stdlib ``random`` or a literal
seed is fine in a test, fatal in library code.  A file is ``"tests"``
context when any directory component is ``tests`` or the filename is
``test_*.py`` / ``conftest.py``; ``"examples"`` when a directory
component is ``examples`` (where only the API-surface rules run —
examples may use literal seeds freely, but must import through
``repro.api``); everything else is ``"src"``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from .framework import Context

__all__ = ["classify", "discover"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "build", "dist", ".eggs"})


def classify(path: Path) -> Context:
    """The lint context of ``path`` (see module docstring)."""
    name = path.name
    if name == "conftest.py" or name.startswith("test_"):
        return "tests"
    if "examples" in path.parts:
        return "examples"
    if "tests" in path.parts:
        return "tests"
    return "src"


def _iter_tree(root: Path) -> Iterator[Path]:
    """Yield ``.py`` files under ``root`` in sorted, stable order."""
    entries = sorted(root.iterdir(), key=lambda p: p.name)
    for entry in entries:
        if entry.is_dir():
            if entry.name in _SKIP_DIRS or entry.name.startswith("."):
                continue
            yield from _iter_tree(entry)
        elif entry.suffix == ".py":
            yield entry


def discover(paths: Iterable[str | Path]) -> list[tuple[Path, Context]]:
    """Expand files/directories into ``(file, context)`` pairs.

    Directories are walked recursively; explicit file arguments are
    taken as-is (even without a ``.py`` suffix).  Missing paths raise
    ``FileNotFoundError`` — a lint run over nothing is a config bug,
    not a clean pass.
    """
    found: list[tuple[Path, Context]] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            found.extend((file, classify(file)) for file in _iter_tree(root))
        elif root.is_file():
            found.append((root, classify(root)))
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
    return found
