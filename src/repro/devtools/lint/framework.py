"""Core of the ``repro-lint`` static-analysis framework.

The moving parts, smallest first:

* :class:`Violation` — one finding: file, position, rule ID, message.
* :class:`Suppression` — one parsed ``# repro-lint: disable=RULE``
  comment, with its justification and a record of which rule IDs it
  actually silenced (feeding the unused-suppression meta-check).
* :class:`SourceFile` — a parsed file: source text, AST, context
  (``"src"``, ``"tests"``, or ``"examples"``), and its suppressions by
  line.
* :class:`Rule` — base class for checks.  A rule is an
  :class:`ast.NodeVisitor` with a class-level ``rule_id`` / ``summary``
  / ``rationale`` and a ``contexts`` set saying where it applies;
  subclasses call :meth:`Rule.report` on offending nodes.
* :class:`RuleRegistry` / :func:`register_rule` — the plug-in point:
  decorating a rule class registers it with the default pack.
* :class:`LintEngine` — runs a rule pack over files, applies
  suppressions, and appends the meta-diagnostics (``LINT001`` unused
  suppression, ``LINT002`` missing justification, ``LINT003`` unknown
  rule ID).

Suppressions are **same-line** and **justified**::

    except Exception as exc:  # repro-lint: disable=ERR003 -- crash isolation, see RunResult

The comment must sit on the line the violation is reported at (for a
multi-line statement: the line the node starts on).  The ``-- reason``
part is mandatory; a suppression without one is itself a violation.
Meta-diagnostics cannot be suppressed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, ClassVar, Iterable, Iterator, Literal, Sequence

__all__ = [
    "Context",
    "EXTERNAL_KNOWN_IDS",
    "META_SUMMARIES",
    "Violation",
    "Suppression",
    "SourceFile",
    "Rule",
    "RuleRegistry",
    "register_rule",
    "LintReport",
    "LintEngine",
]

#: Where a file lives, which decides which rules apply to it.
Context = Literal["src", "tests", "examples"]

#: IDs of the engine's own meta-diagnostics (not suppressible).
META_UNUSED = "LINT001"
META_NO_JUSTIFICATION = "LINT002"
META_UNKNOWN_RULE = "LINT003"

#: Meta-diagnostic summaries, for ``--list-rules`` (they have no Rule class).
META_SUMMARIES: dict[str, str] = {
    META_UNUSED: "unused suppression: the named rule did not fire on that line",
    META_NO_JUSTIFICATION: "suppression without a ' -- <why>' justification",
    META_UNKNOWN_RULE: "suppression names a rule ID the project does not define",
}

#: Rule IDs defined by *other* stages that share the suppression syntax
#: (the ``FLOW0xx`` pack of ``repro-analyze`` registers itself here), so
#: a cross-stage suppression is never misreported as ``LINT003``
#: unknown.  Consulted at engine construction, not import, time.
EXTERNAL_KNOWN_IDS: set[str] = set()

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<ids>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
    r"(?:\s*--\s*(?P<why>\S.*?))?\s*$"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One finding, ordered by position for stable reports."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The conventional ``path:line:col: ID message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class Suppression:
    """A parsed ``# repro-lint: disable=...`` comment on one line."""

    line: int
    rule_ids: tuple[str, ...]
    justification: str
    #: Rule IDs this suppression actually silenced (filled by the engine).
    used: set[str] = field(default_factory=set)

    def covers(self, rule_id: str) -> bool:
        """Whether this suppression names ``rule_id``."""
        return rule_id in self.rule_ids


def _parse_suppressions(text: str) -> dict[int, Suppression]:
    """Extract suppression comments from real comment tokens only.

    Tokenising (rather than regexing raw lines) keeps suppression
    syntax *inside string literals* inert — essential for the linter's
    own test fixtures, which embed suppressed snippets as strings.
    Files that fail to tokenise keep whatever suppressions were seen
    before the failing token — the stream is lazy, so a trailing syntax
    error must not discard the comments above it (the budget counts
    suppressions in files ast.parse rejects).
    """
    suppressions: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            ids = tuple(part.strip() for part in match.group("ids").split(","))
            suppressions[token.start[0]] = Suppression(
                line=token.start[0],
                rule_ids=ids,
                justification=(match.group("why") or "").strip(),
            )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return suppressions


@dataclass
class SourceFile:
    """One parsed source file plus everything rules need to know."""

    path: Path
    display_path: str
    context: Context
    text: str
    tree: ast.Module
    suppressions: dict[int, Suppression]

    @classmethod
    def parse(
        cls, path: str | Path, context: Context, display_path: str | None = None
    ) -> "SourceFile":
        """Read, tokenise, and parse ``path`` (raises ``SyntaxError``)."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        return cls.from_text(
            text,
            context=context,
            path=path,
            display_path=display_path if display_path is not None else str(path),
        )

    @classmethod
    def from_text(
        cls,
        text: str,
        *,
        context: Context = "src",
        path: str | Path = "<string>",
        display_path: str | None = None,
    ) -> "SourceFile":
        """Parse in-memory source (the test-fixture entry point)."""
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=Path(path),
            display_path=display_path if display_path is not None else str(path),
            context=context,
            text=text,
            tree=tree,
            suppressions=_parse_suppressions(text),
        )


class Rule(ast.NodeVisitor):
    """Base class for one lint check.

    Subclasses set the class attributes, implement ``visit_*`` methods
    (or override :meth:`check` for multi-pass analyses), and call
    :meth:`report` for each finding.  One instance is created per file,
    so instance state is per-file scratch space.
    """

    #: Stable ID, e.g. ``"RNG001"`` — what suppressions name.
    rule_id: ClassVar[str]
    #: One-line description used as the default violation message.
    summary: ClassVar[str]
    #: Which project guarantee the rule protects (rendered in docs/CLI).
    rationale: ClassVar[str]
    #: File contexts the rule applies to.
    contexts: ClassVar[frozenset[str]] = frozenset({"src", "tests"})
    #: Whether ``# repro-lint: disable=`` may silence this rule (the
    #: engine's meta-diagnostics are the only non-suppressible checks).
    suppressible: ClassVar[bool] = True

    def __init__(self, source: SourceFile):
        self.source = source
        self.violations: list[Violation] = []

    def check(self) -> list[Violation]:
        """Run the rule over the file and return its findings."""
        self.visit(self.source.tree)
        return self.violations

    def report(self, node: ast.AST, message: str | None = None) -> None:
        """Record a violation at ``node``'s position."""
        self.violations.append(
            Violation(
                path=self.source.display_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule_id=self.rule_id,
                message=message if message is not None else self.summary,
            )
        )


class RuleRegistry:
    """An ordered collection of rule classes, keyed by rule ID."""

    def __init__(self) -> None:
        self._rules: dict[str, type[Rule]] = {}

    def register(self, rule_cls: type[Rule]) -> type[Rule]:
        """Add ``rule_cls``; duplicate IDs are a programming error."""
        rule_id = rule_cls.rule_id
        if rule_id in self._rules:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        self._rules[rule_id] = rule_cls
        return rule_cls

    def __iter__(self) -> Iterator[type[Rule]]:
        return iter(sorted(self._rules.values(), key=lambda cls: cls.rule_id))

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def get(self, rule_id: str) -> type[Rule] | None:
        """The rule class registered under ``rule_id``, if any."""
        return self._rules.get(rule_id)

    def select(
        self,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> list[type[Rule]]:
        """Filtered rule classes (unknown IDs raise ``KeyError``)."""
        chosen = {cls.rule_id: cls for cls in self}
        if select is not None:
            wanted = list(select)
            for rule_id in wanted:
                if rule_id not in chosen:
                    raise KeyError(rule_id)
            chosen = {rid: chosen[rid] for rid in sorted(wanted)}
        for rule_id in ignore or ():
            if rule_id not in self._rules:
                raise KeyError(rule_id)
            chosen.pop(rule_id, None)
        return list(chosen.values())


#: The default pack that :func:`register_rule` populates.
DEFAULT_REGISTRY = RuleRegistry()


def register_rule(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the default pack."""
    return DEFAULT_REGISTRY.register(rule_cls)


@dataclass
class LintReport:
    """Everything one engine run produced."""

    violations: list[Violation]
    files_scanned: int
    #: Files that could not be parsed, as ``(display_path, error)``.
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Clean run: no violations and every file parsed."""
        return not self.violations and not self.parse_errors


class LintEngine:
    """Runs a rule pack over source files and applies suppressions.

    ``known_ids`` is the universe of rule IDs a suppression may name
    without tripping ``LINT003`` — by default the active rules plus the
    whole default registry, so a ``--select`` subset run does not
    misreport suppressions of *unselected* (but real) rules as unknown.
    The unused-suppression check (``LINT001``) still only applies to
    rules that actually ran.
    """

    def __init__(
        self,
        rules: Sequence[type[Rule]] | None = None,
        known_ids: Iterable[str] | None = None,
    ):
        self.rules: list[type[Rule]] = (
            list(rules) if rules is not None else list(DEFAULT_REGISTRY)
        )
        self.known_ids: set[str] = {rule_cls.rule_id for rule_cls in self.rules}
        self.known_ids.update(
            known_ids
            if known_ids is not None
            else (rule_cls.rule_id for rule_cls in DEFAULT_REGISTRY)
        )
        self.known_ids.update(EXTERNAL_KNOWN_IDS)

    # ------------------------------------------------------------------
    # Per-file
    # ------------------------------------------------------------------
    def lint_source(self, source: SourceFile) -> list[Violation]:
        """All surviving violations (rule findings + meta-diagnostics)."""
        raw: list[Violation] = []
        for rule_cls in self.rules:
            if source.context not in rule_cls.contexts:
                continue
            raw.extend(rule_cls(source).check())

        kept: list[Violation] = []
        for violation in raw:
            suppression = source.suppressions.get(violation.line)
            if suppression is not None and suppression.covers(violation.rule_id):
                suppression.used.add(violation.rule_id)
            else:
                kept.append(violation)

        kept.extend(self._meta_diagnostics(source))
        return sorted(kept)

    def _meta_diagnostics(self, source: SourceFile) -> list[Violation]:
        """Unused / unjustified / unknown-ID suppression findings."""
        meta: list[Violation] = []
        active_ids = {rule_cls.rule_id for rule_cls in self.rules}

        def add(line: int, rule_id: str, message: str) -> None:
            meta.append(
                Violation(
                    path=source.display_path,
                    line=line,
                    col=0,
                    rule_id=rule_id,
                    message=message,
                )
            )

        for suppression in source.suppressions.values():
            if not suppression.justification:
                add(
                    suppression.line,
                    META_NO_JUSTIFICATION,
                    "suppression without a justification; append"
                    " ' -- <why this is safe here>'",
                )
            for rule_id in suppression.rule_ids:
                if rule_id not in self.known_ids:
                    add(
                        suppression.line,
                        META_UNKNOWN_RULE,
                        f"suppression names unknown rule {rule_id!r}",
                    )
                elif rule_id in active_ids and rule_id not in suppression.used:
                    add(
                        suppression.line,
                        META_UNUSED,
                        f"unused suppression: {rule_id} did not fire on this"
                        " line; delete it",
                    )
        return meta

    # ------------------------------------------------------------------
    # Many files
    # ------------------------------------------------------------------
    def lint_files(
        self, files: Iterable[tuple[Path, Context]], display: Callable[[Path], str] = str
    ) -> LintReport:
        """Lint ``(path, context)`` pairs into one report."""
        violations: list[Violation] = []
        parse_errors: list[tuple[str, str]] = []
        scanned = 0
        for path, context in files:
            scanned += 1
            display_path = display(path)
            try:
                source = SourceFile.parse(path, context, display_path=display_path)
            except (SyntaxError, UnicodeDecodeError, OSError, ValueError) as exc:
                # ValueError: ast.parse rejects NUL bytes outside SyntaxError.
                parse_errors.append((display_path, f"{type(exc).__name__}: {exc}"))
                continue
            violations.extend(self.lint_source(source))
        return LintReport(
            violations=sorted(violations),
            files_scanned=scanned,
            parse_errors=parse_errors,
        )
