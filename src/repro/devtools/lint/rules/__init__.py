"""The built-in rule pack.

Importing this package registers every rule with the default registry
(each rule module applies the :func:`~repro.devtools.lint.framework.register_rule`
decorator at import time).  Rule IDs are grouped by invariant family:

* ``API00x`` — public-API discipline (:mod:`.api`)
* ``RNG00x`` — RNG discipline (:mod:`.rng`)
* ``DET00x`` — determinism (:mod:`.determinism`)
* ``DUR00x`` — durable-write discipline (:mod:`.durability`)
* ``FRK00x`` — fork safety (:mod:`.forksafe`)
* ``TEL00x`` — telemetry hygiene (:mod:`.telemetry`)
* ``ERR00x`` — error handling (:mod:`.errors`)
* ``VEC00x`` — vectorized hot-path discipline (:mod:`.vectorization`)
* ``SCH00x`` — scheduler fusion discipline (:mod:`.scheduler`)

``LINT00x`` meta-diagnostics (unused/unjustified/unknown suppressions)
are produced by the engine itself, not by pluggable rules.
"""

from . import (
    api,
    determinism,
    durability,
    errors,
    forksafe,
    rng,
    scheduler,
    telemetry,
    vectorization,
)
from ..framework import DEFAULT_REGISTRY


def default_rules() -> list[type]:
    """The registered rule classes, sorted by rule ID."""
    return list(DEFAULT_REGISTRY)


__all__ = [
    "default_rules",
    "api",
    "determinism",
    "durability",
    "errors",
    "forksafe",
    "rng",
    "scheduler",
    "telemetry",
    "vectorization",
]
