"""Public-API discipline rules (``API0xx``).

The stable import surface lives in :mod:`repro.api`; everything else
(``repro.service``, ``repro.scheduler.engine``, ...) is internal
layout that may move between releases.  Two disciplines keep that
promise honest:

* library code must not import *deprecated* names — the shims exist so
  downstream users get a ``DeprecationWarning`` cycle, not so the
  project keeps depending on them internally;
* example code (the ``examples`` context) must import only from the
  facade, because examples are the import style users copy.
"""

from __future__ import annotations

import ast

from ..framework import Rule, register_rule

__all__ = ["StableApiImportRule", "DEPRECATED_NAMES"]

#: Deprecated public names mapped to the replacement each shim points at.
DEPRECATED_NAMES = {
    "ResilientCrowdMaxJob": (
        "pass resilience=ResiliencePolicy(...) to CrowdMaxJob instead"
    ),
}

#: The one module examples are allowed to import ``repro`` through.
_FACADE = "repro.api"


def _is_repro_module(module: str | None, level: int) -> bool:
    """Whether an import target resolves inside the ``repro`` package."""
    if level > 0:
        return True
    if module is None:
        return False
    return module == "repro" or module.startswith("repro.")


def _is_facade(module: str | None) -> bool:
    """Whether ``module`` is the stable facade itself."""
    return module == _FACADE or (
        module is not None and module.startswith(_FACADE + ".")
    )


@register_rule
class StableApiImportRule(Rule):
    """Imports must respect the stable ``repro.api`` surface."""

    rule_id = "API001"
    summary = "import bypasses the stable repro.api surface"
    rationale = (
        "repro.api is the only surface with a compatibility guarantee. "
        "Library code importing a deprecated shim re-entrenches the old "
        "API it is supposed to be retiring; an example importing internal "
        "modules teaches users an import style that breaks when the "
        "layout changes."
    )
    contexts = frozenset({"src", "examples"})

    def visit_Import(self, node: ast.Import) -> None:
        if self.source.context == "examples":
            for alias in node.names:
                if _is_repro_module(alias.name, 0) and not _is_facade(alias.name):
                    self.report(
                        alias,
                        f"example imports {alias.name!r} directly; import"
                        f" through the stable {_FACADE!r} facade",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not _is_repro_module(node.module, node.level):
            self.generic_visit(node)
            return
        for alias in node.names:
            hint = DEPRECATED_NAMES.get(alias.name)
            if hint is not None:
                # Reported on the alias (not the statement), so a
                # suppression can sit on the offending name inside a
                # multi-line import list.
                self.report(
                    alias,
                    f"deprecated name {alias.name!r} imported; {hint}",
                )
        if self.source.context == "examples" and not _is_facade(node.module):
            shown = ("." * node.level) + (node.module or "")
            self.report(
                node,
                f"example imports {shown!r} directly; import through the"
                f" stable {_FACADE!r} facade",
            )
        self.generic_visit(node)
