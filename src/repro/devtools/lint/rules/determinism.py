"""Determinism rules (``DET0xx``).

Reproducibility dies quietly: an iteration order that depends on hash
randomisation, or a wall-clock value folded into a result payload,
changes outputs between runs without any code being "random".  These
rules catch the two project-relevant shapes statically.
"""

from __future__ import annotations

import ast

from ..framework import Rule, Violation, register_rule

__all__ = ["SetIterationRule", "WallClockRule"]


def _is_set_expr(node: ast.expr) -> bool:
    """Whether ``node`` is syntactically set-valued: a set display, a set
    comprehension, or a direct ``set(...)`` / ``frozenset(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register_rule
class SetIterationRule(Rule):
    """Iterating a set where order can reach results or RNG draws."""

    rule_id = "DET001"
    summary = "iteration over an unordered set"
    rationale = (
        "Set iteration order depends on hash randomisation; fed into an "
        "RNG-consuming loop or a result list it makes two identically "
        "seeded runs diverge. Sort first (``sorted(...)``)."
    )
    contexts = frozenset({"src", "tests"})

    _MESSAGE = (
        "iteration over an unordered set; wrap it in sorted(...) so the"
        " order is deterministic"
    )

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self.report(node.iter, self._MESSAGE)
        self.generic_visit(node)

    def _check_comprehension(
        self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp
    ) -> None:
        for generator in node.generators:
            if _is_set_expr(generator.iter):
                self.report(generator.iter, self._MESSAGE)
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        # list({...}) / tuple(set(...)) materialise the unordered order.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and len(node.args) == 1
            and _is_set_expr(node.args[0])
        ):
            self.report(
                node,
                f"{node.func.id}() over an unordered set materialises a"
                " nondeterministic order; use sorted(...)",
            )
        self.generic_visit(node)


@register_rule
class WallClockRule(Rule):
    """Wall-clock reads in library code outside the telemetry layer."""

    rule_id = "DET002"
    summary = "wall-clock read outside the telemetry layer"
    rationale = (
        "Result payloads must be pure functions of (inputs, seed); a "
        "wall-clock value makes byte-wise artifact comparison impossible. "
        "Durations belong to time.perf_counter(); absolute timestamps "
        "belong to telemetry sinks only."
    )
    contexts = frozenset({"src"})

    #: ``src/repro/telemetry`` is the sanctioned home for timestamps.
    _EXEMPT_PART = "telemetry"

    _TIME_FNS = frozenset({"time", "time_ns"})
    _DATETIME_FNS = frozenset({"now", "utcnow", "today", "fromtimestamp"})

    def check(self) -> list[Violation]:
        if self._EXEMPT_PART in self.source.path.parts:
            return []
        return super().check()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                func.attr in self._TIME_FNS
                and isinstance(base, ast.Name)
                and base.id == "time"
            ):
                self.report(
                    node,
                    f"time.{func.attr}() is wall-clock; use"
                    " time.perf_counter() for durations or emit via telemetry",
                )
            elif func.attr in self._DATETIME_FNS and self._is_datetime_base(base):
                self.report(
                    node,
                    f"datetime wall-clock call ({func.attr}); absolute"
                    " timestamps belong in telemetry sinks only",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_datetime_base(node: ast.expr) -> bool:
        """Matches ``datetime``/``date`` and ``datetime.datetime`` etc."""
        if isinstance(node, ast.Name):
            return node.id in ("datetime", "date")
        return isinstance(node, ast.Attribute) and node.attr in ("datetime", "date")
