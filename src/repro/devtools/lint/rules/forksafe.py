"""Fork-safety rules (``FRK0xx``).

:mod:`repro.parallel` fans runs out over a ``ProcessPoolExecutor``.
Module-level mutable state is the classic way that goes wrong: a value
mutated in a worker silently diverges from the parent (fork) or is
reset entirely (spawn), and the "same" run stops being the same.  These
rules reject the two syntactic shapes that create such state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Rule, Violation, register_rule

__all__ = ["GlobalStatementRule", "ModuleStateMutationRule"]


@register_rule
class GlobalStatementRule(Rule):
    """``global`` rebinding inside library functions."""

    rule_id = "FRK001"
    summary = "global statement in library code"
    rationale = (
        "A function that rebinds module globals creates per-process state "
        "that diverges across pool workers; thread state through "
        "parameters/returns, or justify the one sanctioned ambient (the "
        "active tracer)."
    )
    contexts = frozenset({"src"})

    def visit_Global(self, node: ast.Global) -> None:
        names = ", ".join(node.names)
        self.report(
            node,
            f"global {names}: module state mutated from a function is not"
            " fork-safe; thread it through parameters instead",
        )
        self.generic_visit(node)


#: Calls that mutate a container in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
    }
)


def _module_level_mutables(tree: ast.Module) -> set[str]:
    """Names bound at module level to mutable container literals/calls."""
    names: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        literal = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        factories = ("list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict")
        mutable = isinstance(value, literal) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in factories
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _binding_names(target: ast.expr) -> Iterator[str]:
    """Names a target expression *binds* (rebinding, not mutation).

    Recurses through tuple/list destructuring and ``*rest`` but stops at
    ``x[k] = ...`` / ``x.attr = ...``: those mutate the object bound to
    ``x`` without rebinding the name — the exact case FRK002 exists for.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _binding_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _local_bindings(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names the function binds locally (params + assignments)."""
    args = func.args
    params = args.posonlyargs + args.args + args.kwonlyargs
    params += [a for a in (args.vararg, args.kwarg) if a is not None]
    bound = {a.arg for a in params}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_binding_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For)):
            bound.update(_binding_names(node.target))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            bound.add(node.name)
    return bound


@register_rule
class ModuleStateMutationRule(Rule):
    """In-place mutation of a module-level container from a function."""

    rule_id = "FRK002"
    summary = "module-level mutable state mutated inside a function"
    rationale = (
        "A module-level list/dict/set mutated from function bodies (e.g. a "
        "parallel worker entrypoint) is invisible to the parent process and "
        "non-reproducible across worker counts; pass state explicitly."
    )
    contexts = frozenset({"src"})

    def check(self) -> list[Violation]:
        module_mutables = _module_level_mutables(self.source.tree)
        if not module_mutables:
            return []
        for node in ast.walk(self.source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            shadowed = _local_bindings(node)
            candidates = module_mutables - shadowed
            if not candidates:
                continue
            for inner in ast.walk(node):
                # cache.append(...) / cache.update(...) style mutation.
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr in _MUTATING_METHODS
                    and isinstance(inner.func.value, ast.Name)
                    and inner.func.value.id in candidates
                ):
                    self.report(
                        inner,
                        f"{inner.func.value.id}.{inner.func.attr}(...) mutates"
                        " module-level state inside a function; not fork-safe",
                    )
                # cache[key] = ... / del cache[key] style mutation.
                elif isinstance(inner, (ast.Assign, ast.AugAssign, ast.Delete)):
                    targets = (
                        inner.targets
                        if isinstance(inner, (ast.Assign, ast.Delete))
                        else [inner.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in candidates
                        ):
                            self.report(
                                inner,
                                f"{target.value.id}[...] assigned inside a"
                                " function mutates module-level state; not"
                                " fork-safe",
                            )
        return self.violations
