"""Scheduler rules (``SCH0xx``).

The fused settlement path is a correctness *and* performance contract:
every platform purchase made by scheduler code must flow through the
tick's fusion queue (``_settle_requests`` → ``_flush_fused``) so that
cache visibility, journal group framing, admission-order charging, and
the ``batch_fused`` telemetry all stay consistent.  A direct
``compare_batch`` / ``submit_batch`` call sprinkled into scheduler code
silently bypasses all four.

The one sanctioned bypass — the ``fusion=off`` escape hatch in
``_serve_serial`` — carries a justified same-line suppression, which
doubles as documentation that the bypass is deliberate.
"""

from __future__ import annotations

import ast

from ..framework import Rule, register_rule

__all__ = ["DirectPlatformBatchRule"]

#: Platform entry points that buy judgments outside the fusion queue.
_BATCH_CALLS = frozenset({"compare_batch", "submit_batch"})


@register_rule
class DirectPlatformBatchRule(Rule):
    """Direct platform batch call in scheduler code, bypassing fusion."""

    rule_id = "SCH001"
    summary = "direct platform batch call bypasses the scheduler fusion queue"
    rationale = (
        "Scheduler code that calls compare_batch/submit_batch directly "
        "skips the tick's fused settlement: its spend is invisible to "
        "the cross-job cache overlap check, lands outside the journal "
        "group framing, and breaks the admission-order charge "
        "discipline the bit-identity contract rests on. Route requests "
        "through the fusion queue; the serial fusion=off escape hatch "
        "justifies a suppression."
    )
    contexts = frozenset({"src"})

    def check(self) -> list:
        # Scoped to the scheduler package: elsewhere these calls are
        # the normal platform API.
        if "repro/scheduler/" not in self.source.path.as_posix():
            return []
        self.visit(self.source.tree)
        return self.violations

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _BATCH_CALLS:
            self.report(
                node,
                f".{func.attr}() called directly from scheduler code; "
                "post the request to the fusion queue instead (or "
                "justify a suppression for the serial escape hatch)",
            )
        self.generic_visit(node)
