"""Telemetry-hygiene rules (``TEL0xx``).

The trace schema in ``docs/OBSERVABILITY.md`` is a contract: spans are
always paired (``span_start``/``span_end``), and every name is declared
in :mod:`repro.telemetry.names` so replayers, dashboards, and tests can
match on it.  These rules keep instrumentation honest.
"""

from __future__ import annotations

import ast

from repro.telemetry import names as _names

from ..framework import Rule, Violation, register_rule

__all__ = ["SpanContextManagerRule", "DeclaredNamesRule"]


def _is_span_call(node: ast.AST) -> bool:
    """Whether ``node`` is a ``<something>.span(...)`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "span"
    )


@register_rule
class SpanContextManagerRule(Rule):
    """``tracer.span(...)`` used other than as a context manager."""

    rule_id = "TEL001"
    summary = "span() not used as a context manager"
    rationale = (
        "A span not entered via ``with`` never emits its span_end, leaving "
        "an unpaired span_start that breaks duration accounting and trace "
        "replay in the parallel engine."
    )
    contexts = frozenset({"src", "tests"})

    def check(self) -> list[Violation]:
        as_context: set[int] = set()
        for node in ast.walk(self.source.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _is_span_call(item.context_expr):
                        as_context.add(id(item.context_expr))
        for node in ast.walk(self.source.tree):
            if _is_span_call(node) and id(node) not in as_context:
                self.report(
                    node,
                    "span(...) must be entered with a `with` statement so"
                    " span_end is always emitted",
                )
        return self.violations


@register_rule
class DeclaredNamesRule(Rule):
    """Literal event/span/counter names must be declared in the registry."""

    rule_id = "TEL002"
    summary = "undeclared telemetry name"
    rationale = (
        "Consumers (trace replay, dashboards, tests) match on names from "
        "repro.telemetry.names; an undeclared literal silently forks the "
        "trace schema. Add the name to the registry alongside the emitter."
    )
    contexts = frozenset({"src"})

    #: method name -> (registry, registry description)
    _CHECKS = {
        "event": (_names.EVENT_KINDS, "EVENT_KINDS"),
        "span": (_names.SPAN_NAMES, "SPAN_NAMES"),
        "count": (_names.COUNTER_NAMES, "COUNTER_NAMES"),
        "counter": (_names.COUNTER_NAMES, "COUNTER_NAMES"),
        "timer": (_names.COUNTER_NAMES | _names.TIMER_NAMES, "TIMER_NAMES"),
    }

    #: ``count``/``counter``/``timer`` are common method names on
    #: unrelated objects (``str.count``!); they are only checked when the
    #: receiver is recognisably telemetry.  ``event``/``span`` are
    #: distinctive enough to always check.
    _RECEIVER_GUARDED = frozenset({"count", "counter", "timer"})

    @staticmethod
    def _is_telemetry_receiver(node: ast.expr) -> bool:
        last = node.id if isinstance(node, ast.Name) else getattr(node, "attr", "")
        last = last.lower()
        return "tracer" in last or "metrics" in last or "telemetry" in last

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._CHECKS
            and node.args
            and (
                func.attr not in self._RECEIVER_GUARDED
                or self._is_telemetry_receiver(func.value)
            )
        ):
            registry, registry_name = self._CHECKS[func.attr]
            for literal in self._literal_candidates(node.args[0]):
                if literal not in registry:
                    self.report(
                        node,
                        f"{func.attr}({literal!r}): name not declared in"
                        f" repro.telemetry.names.{registry_name}",
                    )
        self.generic_visit(node)

    @staticmethod
    def _literal_candidates(node: ast.expr) -> list[str]:
        """String literals reachable from a name argument.

        Handles the plain literal and the two-branch conditional
        (``"a" if ok else "b"``).  Dynamic names (variables, f-strings)
        cannot be checked statically and are deliberately skipped.
        """
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return [node.value]
        if isinstance(node, ast.IfExp):
            found: list[str] = []
            for branch in (node.body, node.orelse):
                if isinstance(branch, ast.Constant) and isinstance(branch.value, str):
                    found.append(branch.value)
            return found
        return []
