"""Vectorization-discipline rules (``VEC0xx``).

The comparison hot path is batched end-to-end: algorithms hand whole
ndarray pair batches to ``ComparisonOracle.compare_pairs``, worker
models decide whole batches at once, and the platform settles
fault-free batches from ndarrays.  A scalar comparison call inside a
Python loop silently re-serialises that path — each iteration pays the
full per-call overhead (validation, memo probe, RNG dispatch, telemetry)
for one pair, which is how the pre-vectorization hot path ended up two
orders of magnitude slower than the batched one.

Loops that are *inherently* sequential (a decision per element routed
to a different model, a two-element base case of a recursion) carry a
suppression naming the reason, which keeps the exception auditable.
"""

from __future__ import annotations

import ast

from ..framework import Rule, register_rule

__all__ = ["ScalarComparisonInLoopRule"]

#: Scalar per-pair entry points of the comparison path.  Their batched
#: counterparts: ``compare`` -> ``compare_pairs``, ``decide_single`` ->
#: ``decide`` / ``decide_from_uniforms``, ``judge`` -> the platform's
#: vectorized fast path.
_SCALAR_COMPARISON_CALLS = frozenset({"compare", "decide_single", "judge"})


@register_rule
class ScalarComparisonInLoopRule(Rule):
    """A scalar comparison call iterated by a Python loop."""

    rule_id = "VEC001"
    summary = "scalar comparison call inside a Python loop"
    rationale = (
        "The comparison hot path is batched end-to-end; looping a scalar "
        "compare/decide_single/judge call pays per-call overhead per pair "
        "and bypasses the vectorized memo, RNG, and telemetry paths.  "
        "Batch the pairs and make one compare_pairs/decide call."
    )
    contexts = frozenset({"src"})

    def __init__(self, source) -> None:  # type: ignore[no-untyped-def]
        super().__init__(source)
        self._reported: set[int] = set()

    def _scan_loop(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _SCALAR_COMPARISON_CALLS
                and id(child) not in self._reported
            ):
                self._reported.add(id(child))
                self.report(
                    child,
                    f"scalar .{child.func.attr}() iterated by a loop; batch "
                    "the pairs and call the vectorized API once",
                )

    def visit_For(self, node: ast.For) -> None:
        self._scan_loop(node)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._scan_loop(node)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._scan_loop(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._scan_loop(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._scan_loop(node)
        self.generic_visit(node)
