"""Durability rules (``DUR0xx``).

A crash between ``open(path, "w")`` truncating a file and the final
``flush`` leaves a torn artifact that a later reader half-parses — the
exact failure mode :mod:`repro.experiments.artifacts` exists to
prevent (write to a temp file, fsync, then atomically rename).  This
rule makes the atomic-writer discipline mechanical: library code must
not hand-roll writable ``open`` calls.

Legitimate exceptions (append-only journals with their own fsync
framing, streaming telemetry sinks) carry a justified same-line
suppression, which doubles as documentation of *why* the bare handle
is safe there.
"""

from __future__ import annotations

import ast

from ..framework import Rule, register_rule

__all__ = ["BareWriteRule"]

#: open() mode characters that make the handle writable.
_WRITE_CHARS = frozenset("wax+")


def _mode_literal(node: ast.Call, position: int) -> str | None:
    """The call's mode string, when given as a literal (else ``None``).

    ``position`` is where mode sits positionally: 1 for the builtin
    ``open(file, mode)``, 0 for the ``Path.open(mode)`` method.
    """
    mode: ast.expr | None = None
    if len(node.args) > position:
        mode = node.args[position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@register_rule
class BareWriteRule(Rule):
    """Hand-rolled writable ``open`` instead of the atomic writers."""

    rule_id = "DUR001"
    summary = "bare writable open() outside the atomic-writer helpers"
    rationale = (
        "A crash mid-write leaves a torn file that later readers "
        "half-parse. Durable artifacts go through "
        "repro.experiments.artifacts (write_atomic / write_text_atomic "
        "/ write_json_atomic): temp file, fsync, atomic rename. "
        "Genuinely streaming writers (append-only journals, telemetry "
        "sinks) justify a same-line suppression."
    )
    contexts = frozenset({"src"})

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            self._check_mode(node, "open", position=1)
        elif isinstance(func, ast.Attribute):
            if func.attr == "open":
                self._check_mode(node, ".open", position=0)
            elif func.attr in ("write_text", "write_bytes"):
                self.report(
                    node,
                    f".{func.attr}() truncates in place; use "
                    "repro.experiments.artifacts.write_text_atomic (or "
                    "write_atomic) so a crash cannot leave a torn file",
                )
        self.generic_visit(node)

    def _check_mode(self, node: ast.Call, spelling: str, position: int) -> None:
        mode = _mode_literal(node, position)
        if mode is not None and _WRITE_CHARS.intersection(mode):
            self.report(
                node,
                f"{spelling}(..., {mode!r}) writes through a bare handle; "
                "use the atomic writers in repro.experiments.artifacts "
                "(temp + fsync + rename), or justify a suppression for "
                "append-only/streaming handles with their own framing",
            )
