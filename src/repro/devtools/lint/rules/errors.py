"""Error-handling rules (``ERR0xx``).

A reproduction's failure modes must be *loud*: a swallowed exception in
a filter round or a platform batch turns a broken run into a subtly
wrong number in a results table.  These rules ban the quiet shapes.
"""

from __future__ import annotations

import ast

from ..framework import Rule, register_rule

__all__ = ["BareExceptRule", "SwallowedExceptionRule", "BroadExceptNoReraiseRule"]


def _caught_names(handler: ast.ExceptHandler) -> list[str]:
    """The exception class names a handler catches (empty for bare)."""
    node = handler.type
    if node is None:
        return []
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    names: list[str] = []
    for elt in elts:
        if isinstance(elt, ast.Name):
            names.append(elt.id)
        elif isinstance(elt, ast.Attribute):
            names.append(elt.attr)
    return names


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Whether the handler catches ``Exception`` or ``BaseException``."""
    return any(name in ("Exception", "BaseException") for name in _caught_names(handler))


def _body_is_silent(body: list[ast.stmt]) -> bool:
    """Whether the handler body does nothing observable at all."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value in (Ellipsis, None)
        ):
            continue  # bare `...` or docstring-less constant
        return False
    return True


@register_rule
class BareExceptRule(Rule):
    """``except:`` with no exception class."""

    rule_id = "ERR001"
    summary = "bare except"
    rationale = (
        "A bare except catches KeyboardInterrupt and SystemExit, making "
        "runs unkillable and hiding interpreter shutdown; name the "
        "exceptions (at minimum `except Exception`)."
    )
    contexts = frozenset({"src", "tests"})

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except catches KeyboardInterrupt/SystemExit too; catch"
                " Exception (or something narrower)",
            )
        self.generic_visit(node)


@register_rule
class SwallowedExceptionRule(Rule):
    """``except Exception: pass`` — an error erased without trace."""

    rule_id = "ERR002"
    summary = "silently swallowed broad exception"
    rationale = (
        "A broad handler whose body is only pass/continue erases the "
        "failure entirely; at minimum record it (telemetry event, note on "
        "the result) or narrow the exception class."
    )
    contexts = frozenset({"src", "tests"})

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if (node.type is None or _is_broad(node)) and _body_is_silent(node.body):
            self.report(
                node,
                "broad exception silently swallowed; record the failure or"
                " narrow the except clause",
            )
        self.generic_visit(node)


@register_rule
class BroadExceptNoReraiseRule(Rule):
    """Broad handler in library code that never re-raises."""

    rule_id = "ERR003"
    summary = "broad except without re-raise in library code"
    rationale = (
        "Catching Exception and continuing is only legitimate at explicit "
        "isolation boundaries (e.g. the parallel engine's crash isolation), "
        "where it must be suppressed with a justification; everywhere else "
        "the failure must propagate or the clause must narrow."
    )
    contexts = frozenset({"src"})

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if _is_broad(node) and not any(
            isinstance(inner, ast.Raise) for inner in ast.walk(node)
        ):
            self.report(
                node,
                "broad except never re-raises; narrow it, or suppress with a"
                " justification if this is a deliberate isolation boundary",
            )
        self.generic_visit(node)
