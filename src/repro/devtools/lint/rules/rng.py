"""RNG-discipline rules (``RNG0xx``).

The whole reproduction rests on one contract: every random draw flows
from a ``numpy.random.Generator`` that was *threaded in from the
caller*, ultimately rooted in a seed the experiment records
(``spawn_run_seeds`` in :mod:`repro.parallel` makes parallel sweeps
bit-identical for exactly this reason).  These rules reject the ways
that contract silently breaks.
"""

from __future__ import annotations

import ast

from ..framework import Rule, register_rule

__all__ = [
    "NumpyGlobalStateRule",
    "StdlibRandomRule",
    "UnseededDefaultRngRule",
    "LiteralSeedRule",
]

#: Legacy ``numpy.random`` module-level-state callables.  Everything on
#: the module that is *not* part of the Generator/SeedSequence API
#: draws from (or mutates) the hidden global ``RandomState``.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


def _is_np_random(node: ast.expr) -> bool:
    """Whether ``node`` is the expression ``np.random`` / ``numpy.random``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


@register_rule
class NumpyGlobalStateRule(Rule):
    """``np.random.<legacy fn>`` uses the hidden global RandomState."""

    rule_id = "RNG001"
    summary = "call into numpy's global RandomState"
    rationale = (
        "Module-level numpy RNG state is shared by everything in the "
        "process; one call desynchronises every seeded stream and breaks "
        "the bit-identical parallel-sweep guarantee."
    )
    contexts = frozenset({"src", "tests"})

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _is_np_random(node.value) and node.attr not in _NP_RANDOM_ALLOWED:
            self.report(
                node,
                f"np.random.{node.attr} uses numpy's global RandomState;"
                " draw from a threaded numpy.random.Generator instead",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _NP_RANDOM_ALLOWED:
                    self.report(
                        node,
                        f"from numpy.random import {alias.name} imports a"
                        " global-RandomState function",
                    )
        self.generic_visit(node)


@register_rule
class StdlibRandomRule(Rule):
    """``import random`` in library code."""

    rule_id = "RNG002"
    summary = "stdlib random in library code"
    rationale = (
        "stdlib random is a second, separately-seeded global stream; "
        "library randomness must come from the threaded numpy Generator "
        "so one recorded seed reproduces the whole run."
    )
    contexts = frozenset({"src"})

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    node,
                    "stdlib random is banned in src/; use the threaded"
                    " numpy.random.Generator",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.report(
                node,
                "stdlib random is banned in src/; use the threaded"
                " numpy.random.Generator",
            )
        self.generic_visit(node)


def _is_default_rng_call(node: ast.Call) -> bool:
    """Whether ``node`` calls ``default_rng`` (bare or dotted)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "default_rng"
    return isinstance(func, ast.Attribute) and func.attr == "default_rng"


def _is_seed_sequence_call(node: ast.Call) -> bool:
    """Whether ``node`` constructs a ``SeedSequence``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "SeedSequence"
    return isinstance(func, ast.Attribute) and func.attr == "SeedSequence"


@register_rule
class UnseededDefaultRngRule(Rule):
    """``default_rng()`` with no arguments seeds from OS entropy."""

    rule_id = "RNG003"
    summary = "argument-less default_rng() in library code"
    rationale = (
        "default_rng() with no seed pulls OS entropy, so no two runs are "
        "alike and no failure is replayable; library code must accept the "
        "generator (or seed) from its caller."
    )
    contexts = frozenset({"src"})

    def visit_Call(self, node: ast.Call) -> None:
        if _is_default_rng_call(node) and not node.args and not node.keywords:
            self.report(
                node,
                "default_rng() without a seed is non-reproducible; accept an"
                " rng (or seed) parameter instead",
            )
        self.generic_visit(node)


@register_rule
class LiteralSeedRule(Rule):
    """A literal integer seed buried in library code."""

    rule_id = "RNG004"
    summary = "RNG re-seeded from an inline integer literal"
    rationale = (
        "An inline literal seed forks a private stream the experiment "
        "config cannot see or vary; seeds must be threaded from the caller "
        "or declared as a named module constant documenting what they pin."
    )
    contexts = frozenset({"src"})

    def visit_Call(self, node: ast.Call) -> None:
        if _is_default_rng_call(node) or _is_seed_sequence_call(node):
            first = node.args[0] if node.args else None
            if (
                isinstance(first, ast.Constant)
                and isinstance(first.value, int)
                and not isinstance(first.value, bool)
            ):
                self.report(
                    node,
                    f"inline literal seed {first.value}; thread the rng from"
                    " the caller or name the constant (e.g. CATALOG_SEED)",
                )
        self.generic_visit(node)
