"""``repro-lint``: AST-based checks for the project's invariants.

Public surface:

* :func:`run_lint` — lint paths programmatically, returning a
  :class:`~repro.devtools.lint.framework.LintReport`.
* :class:`LintEngine`, :class:`Rule`, :class:`Violation`,
  :func:`register_rule` — the framework, for adding project rules.
* :func:`default_rules` — the built-in rule pack (importing this
  package registers it).

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the
suppression syntax.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from .framework import (
    DEFAULT_REGISTRY,
    LintEngine,
    LintReport,
    Rule,
    RuleRegistry,
    SourceFile,
    Suppression,
    Violation,
    register_rule,
)
from .reporters import render_json, render_text
from .rules import default_rules
from .walker import classify, discover

__all__ = [
    "DEFAULT_REGISTRY",
    "LintEngine",
    "LintReport",
    "Rule",
    "RuleRegistry",
    "SourceFile",
    "Suppression",
    "Violation",
    "classify",
    "default_rules",
    "discover",
    "register_rule",
    "render_json",
    "render_text",
    "run_lint",
]


def run_lint(paths: Iterable[str | Path]) -> LintReport:
    """Lint ``paths`` with the default rule pack."""
    return LintEngine().lint_files(discover(paths))
