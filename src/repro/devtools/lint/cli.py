"""The ``repro-lint`` console entry point.

Usage::

    repro-lint [paths ...] [--format text|json] [--select IDS]
               [--ignore IDS] [--list-rules] [--budget [PATH]]

Exit codes: ``0`` clean, ``1`` violations (or unparsable files), ``2``
usage errors.  With no paths, lints ``src``, ``tests``, and
``examples`` relative to the current directory — the repository
invocation CI uses.  ``--budget`` switches to the suppression-debt
ratchet shared with ``repro-analyze``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

# Rule modules self-register on import; these imports are the
# registration.  The FLOW pack registers its IDs with
# EXTERNAL_KNOWN_IDS so analyze-stage suppressions are not LINT003.
from . import rules as _rules  # noqa: F401  (imported for side effect)
from ..analyze import rules as _flow_rules  # noqa: F401
from ..budget import DEFAULT_BUDGET_PATH, run_budget
from .framework import DEFAULT_REGISTRY, LintEngine
from .reporters import render_json, render_rule_listing, render_text
from .walker import discover

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for ``--help`` golden tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static checks for the project's reproducibility invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "examples"],
        help="files or directories to lint (default: src tests examples)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to run exclusively (e.g. RNG001,ERR003)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule pack (ID, contexts, suppressibility, summary) and exit",
    )
    parser.add_argument(
        "--budget",
        nargs="?",
        const=DEFAULT_BUDGET_PATH,
        metavar="PATH",
        help="suppression-debt ratchet mode: compare per-rule disable counts"
        f" against the checked-in baseline (default: {DEFAULT_BUDGET_PATH})",
    )
    return parser


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        selected = DEFAULT_REGISTRY.select(
            select=_split_ids(args.select), ignore=_split_ids(args.ignore)
        )
    except KeyError as exc:
        parser.error(f"unknown rule id: {exc.args[0]}")

    if args.list_rules:
        sys.stdout.write(render_rule_listing(selected, include_meta=True))
        return 0

    try:
        files = discover(args.paths)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    if args.budget is not None:
        code, output = run_budget(files, args.budget)
        sys.stdout.write(output)
        return code

    engine = LintEngine(rules=selected)
    report = engine.lint_files(files)
    renderer = render_json if args.format == "json" else render_text
    sys.stdout.write(renderer(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
