"""Report rendering for ``repro-lint`` (text and JSON).

Both reporters are pure functions from a :class:`LintReport` to a
string, so they are trivially golden-testable and the CLI stays a thin
shell around them.
"""

from __future__ import annotations

import json

from .framework import META_SUMMARIES, LintReport, Rule

__all__ = ["render_text", "render_json", "render_rule_listing"]


def render_text(report: LintReport) -> str:
    """Conventional ``path:line:col: ID message`` lines plus a summary."""
    lines = [violation.render() for violation in report.violations]
    for path, error in report.parse_errors:
        lines.append(f"{path}:1:0: PARSE cannot parse file: {error}")
    n_violations = len(report.violations) + len(report.parse_errors)
    if n_violations:
        lines.append(
            f"found {n_violations} violation{'s' if n_violations != 1 else ''}"
            f" in {report.files_scanned} file"
            f"{'s' if report.files_scanned != 1 else ''}"
        )
    else:
        lines.append(f"ok: {report.files_scanned} files clean")
    return "\n".join(lines) + "\n"


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order, one trailing newline)."""
    payload = {
        "ok": report.ok,
        "files_scanned": report.files_scanned,
        "violation_count": len(report.violations),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "message": v.message,
            }
            for v in report.violations
        ],
        "parse_errors": [
            {"path": path, "error": error} for path, error in report.parse_errors
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_rule_listing(rules: list[type[Rule]], include_meta: bool = False) -> str:
    """The ``--list-rules`` output: ID, contexts, suppressibility, summary.

    With ``include_meta`` the engine's own ``LINT00x`` meta-diagnostics
    are appended — they have no :class:`Rule` class, but they are part
    of the inventory and are the only non-suppressible checks.
    """
    lines = []
    for rule_cls in rules:
        contexts = ",".join(sorted(rule_cls.contexts))
        suppressible = (
            "suppressible" if getattr(rule_cls, "suppressible", True) else "not suppressible"
        )
        lines.append(
            f"{rule_cls.rule_id}  [{contexts}]  [{suppressible}]  {rule_cls.summary}"
        )
        lines.append(f"    {rule_cls.rationale}")
    if include_meta:
        for meta_id, summary in sorted(META_SUMMARIES.items()):
            lines.append(f"{meta_id}  [meta]  [not suppressible]  {summary}")
    return "\n".join(lines) + "\n"
