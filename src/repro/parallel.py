"""Deterministic process-pool fan-out for independent experiment runs.

Every paper figure is a grid of independent ``(parameter, trial)`` runs
that the experiment drivers used to execute strictly serially.  This
module is the execution engine that fans such grids out across cores
while keeping the results **bit-identical** to the serial path:

* **Seeding** — the caller derives one :class:`numpy.random.SeedSequence`
  child per run via :func:`spawn_run_seeds`.  Child seeds depend only on
  the caller's root generator and the number of runs, never on worker
  count, scheduling, or completion order, so ``jobs=1`` and ``jobs=32``
  see exactly the same per-run random streams.
* **Scheduling** — :func:`execute_runs` executes :class:`RunSpec` items
  either in-process (``jobs=1``) or on a
  :class:`~concurrent.futures.ProcessPoolExecutor` with chunked
  dispatch, and always returns results in spec order (the ordered-merge
  reducer), regardless of which worker finished first.
* **Crash isolation** — a run that raises becomes a typed
  :class:`RunResult` carrying a :class:`RunError` instead of killing the
  sweep; completed runs are never lost.
* **Telemetry across the fork** — each parallel run traces into its own
  per-run :class:`~repro.telemetry.JsonlSink` shard file; the parent
  replays the shards into its own tracer in run order (fields
  ``run_index`` / ``worker_seq`` / ``worker_t`` mark replayed records),
  merges worker-side counters and timers into its
  :class:`~repro.telemetry.MetricsRegistry`, brackets the whole grid in
  a ``parallel_run`` span, and emits one ``run_completed`` /
  ``run_failed`` event per run.

See ``docs/PERFORMANCE.md`` for the guarantees and worked examples.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from .telemetry import NULL_TRACER, JsonlSink, Tracer, resolve_tracer, use_tracer

__all__ = [
    "RunSpec",
    "RunError",
    "RunResult",
    "spawn_run_seeds",
    "resolve_jobs",
    "execute_runs",
    "failure_notes",
]


@dataclass(frozen=True)
class RunSpec:
    """One independent unit of work: ``fn(rng, **params)``.

    ``fn`` must be a module-level (picklable) callable taking a
    ``numpy.random.Generator`` as its first argument; ``params`` must be
    picklable keyword arguments.  ``seed`` is the run's private
    :class:`~numpy.random.SeedSequence` child — the *only* source of
    randomness the run may use, which is what makes the parallel and
    serial paths bit-identical.
    """

    index: int
    fn: Callable[..., Any]
    seed: np.random.SeedSequence
    params: dict[str, Any] = field(default_factory=dict)
    label: str = ""


@dataclass(frozen=True)
class RunError:
    """Typed description of a run that raised instead of returning."""

    type: str
    message: str
    traceback: str

    def __str__(self) -> str:
        return f"{self.type}: {self.message}"


@dataclass
class RunResult:
    """Outcome of one :class:`RunSpec` (success or isolated failure)."""

    index: int
    label: str
    ok: bool
    value: Any = None
    error: RunError | None = None
    duration_s: float = 0.0
    #: Worker-side aggregate counters (parallel mode only; in serial
    #: mode the run traces straight into the parent registry instead).
    counters: dict[str, int] = field(default_factory=dict)
    #: Worker-side timer totals as ``{name: (total_seconds, count)}``.
    timers: dict[str, tuple[float, int]] = field(default_factory=dict)


def spawn_run_seeds(
    rng: np.random.Generator, count: int
) -> list[np.random.SeedSequence]:
    """``count`` independent child seeds derived from ``rng``.

    Draws a fixed amount of entropy from ``rng`` (so the caller's
    generator advances identically however many workers later run) and
    spawns the children from one root :class:`~numpy.random.SeedSequence`.
    Child ``i`` is a pure function of the root entropy and ``i`` — the
    determinism anchor of the whole engine.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    entropy = [int(word) for word in rng.integers(0, 2**63 - 1, size=4)]
    return np.random.SeedSequence(entropy).spawn(count)


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``jobs`` request: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be a positive worker count (or 0/None for all cores)")
    return jobs


def failure_notes(failures: Sequence[RunResult]) -> list[str]:
    """Human-readable one-liners for failed runs (for result notes)."""
    return [
        f"run failed: {result.label or f'#{result.index}'}: {result.error}"
        for result in failures
        if result.error is not None
    ]


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
def _run_one(spec: RunSpec, run_tracer: Tracer) -> RunResult:
    """Execute one spec under ``run_tracer``, isolating any exception."""
    rng = np.random.default_rng(spec.seed)
    start = time.perf_counter()
    try:
        with use_tracer(run_tracer):
            value = spec.fn(rng, **spec.params)
        ok, error = True, None
    except (KeyboardInterrupt, SystemExit):
        # Interpreter-level interrupts must stop the whole sweep, not be
        # folded into a RunResult like an ordinary run failure.
        raise
    # A failed run becomes RunResult(ok=False); the rest of the grid
    # must still complete — this is the engine's crash-isolation boundary.
    except Exception as exc:  # repro-lint: disable=ERR003 -- crash isolation; grid completes
        value = None
        ok = False
        error = RunError(
            type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(),
        )
    duration = time.perf_counter() - start
    return RunResult(
        index=spec.index,
        label=spec.label,
        ok=ok,
        value=value,
        error=error,
        duration_s=duration,
    )


def _execute_payload(payload: tuple[RunSpec, str | None]) -> RunResult:
    """Process-pool entry point: run one spec with its own trace shard.

    The per-run tracer writes to a private :class:`JsonlSink` shard (or
    nowhere when the parent is untraced), so worker emission survives
    the fork without contending for the parent's file handle.  Counters
    and timers travel back on the :class:`RunResult`.
    """
    spec, shard_path = payload
    if shard_path is None:
        # Parent is untraced: give the run the zero-overhead no-op
        # tracer so hot paths skip record assembly entirely.
        return _run_one(spec, NULL_TRACER)
    run_tracer = Tracer(sink=JsonlSink(shard_path), buffer=False)
    try:
        result = _run_one(spec, run_tracer)
    finally:
        run_tracer.close()
    result.counters = {
        name: counter.value
        for name, counter in run_tracer.metrics.counters.items()
    }
    result.timers = {
        name: (timer.total_seconds, timer.count)
        for name, timer in run_tracer.metrics.timers.items()
    }
    return result


# ----------------------------------------------------------------------
# Parent-side merge
# ----------------------------------------------------------------------
def _replay_shard(tracer: Tracer, index: int, shard_path: Path) -> None:
    """Replay one worker shard into the parent tracer, in run order.

    Worker-local ``seq``/``t`` are preserved as ``worker_seq`` /
    ``worker_t``; the parent stamps its own sequence numbers, so the
    merged trace stays totally ordered.
    """
    if not shard_path.exists():
        return
    with shard_path.open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("kind", "unknown")
            record["worker_seq"] = record.pop("seq", None)
            record["worker_t"] = record.pop("t", None)
            record.pop("run_index", None)
            tracer.event(kind, run_index=index, **record)


def _merge_result(tracer: Tracer, result: RunResult) -> None:
    """Fold one run's metrics into the parent and emit its lifecycle event."""
    for name, value in result.counters.items():
        tracer.metrics.counter(name).add(value)
    for name, (total_seconds, count) in result.timers.items():
        timer = tracer.metrics.timer(name)
        timer.total_seconds += total_seconds
        timer.count += count
    tracer.count("parallel.runs_completed" if result.ok else "parallel.runs_failed")
    if tracer.enabled:
        if result.ok:
            tracer.event(
                "run_completed",
                run_index=result.index,
                label=result.label,
                duration_s=round(result.duration_s, 9),
            )
        else:
            assert result.error is not None
            tracer.event(
                "run_failed",
                run_index=result.index,
                label=result.label,
                duration_s=round(result.duration_s, 9),
                error_type=result.error.type,
                error_message=result.error.message,
            )


#: Grids smaller than this many chunks per worker dispatch one spec at
#: a time.  Runs are coarse (milliseconds to seconds of simulation), so
#: pickling overhead is negligible until the grid is huge — but a large
#: chunk pins its whole tail to one worker, serialising the end of the
#: sweep (the estimation-sweep "parallel slower than serial" regression
#: came from ~4-spec chunks on a 2-worker pool).
_CHUNKS_PER_WORKER = 32


def _default_chunksize(n_specs: int, jobs: int) -> int:
    """Chunked dispatch: fine-grained by default, chunked only at scale.

    One spec per dispatch keeps every worker busy until the grid is
    drained; only grids beyond ``jobs * _CHUNKS_PER_WORKER`` specs
    chunk up, and then into enough chunks that the tail still load
    balances.
    """
    if n_specs <= jobs * _CHUNKS_PER_WORKER:
        return 1
    return math.ceil(n_specs / (jobs * _CHUNKS_PER_WORKER))


def execute_runs(
    specs: Sequence[RunSpec],
    jobs: int | None = 1,
    *,
    tracer: Tracer | None = None,
    chunksize: int | None = None,
) -> list[RunResult]:
    """Execute ``specs`` and return their results **in spec order**.

    ``jobs=1`` (the default) runs in-process, tracing directly into the
    ambient/parent tracer — the exact serial behaviour.  ``jobs>1``
    (or ``jobs in (0, None)`` for all cores) fans out over a process
    pool; per-run seeds make the returned values bit-identical to the
    serial path, and the ordered merge makes the result list identical
    too.  A run that raises yields ``RunResult(ok=False, error=...)``
    in its slot; the grid always completes.
    """
    tracer = resolve_tracer(tracer)
    jobs = resolve_jobs(jobs)
    specs = list(specs)
    jobs = min(jobs, max(1, len(specs)))
    results: list[RunResult] = []
    with tracer.span("parallel_run", jobs=jobs, runs=len(specs)):
        if jobs == 1:
            for spec in specs:
                result = _run_one(spec, tracer)
                _merge_result(tracer, result)
                results.append(result)
        else:
            payloads: list[tuple[RunSpec, str | None]]
            with tempfile.TemporaryDirectory(prefix="repro-trace-") as tmp:
                shard_dir = Path(tmp)
                payloads = [
                    (
                        spec,
                        str(shard_dir / f"run-{spec.index:06d}.jsonl")
                        if tracer.enabled
                        else None,
                    )
                    for spec in specs
                ]
                chunk = chunksize or _default_chunksize(len(specs), jobs)
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    for result in pool.map(
                        _execute_payload, payloads, chunksize=chunk
                    ):
                        if tracer.enabled:
                            _replay_shard(
                                tracer,
                                result.index,
                                shard_dir / f"run-{result.index:06d}.jsonl",
                            )
                        _merge_result(tracer, result)
                        results.append(result)
    results.sort(key=lambda result: result.index)
    return results
